"""The :class:`PreparationEngine` facade.

Turns the one-shot :func:`repro.prepare_state` pipeline into a
throughput engine: jobs are content-hashed, served from the circuit
cache when possible, deduplicated within a batch, and executed on a
serial or multi-process backend.  Every job yields a structured
outcome in submission order; a failing job never aborts its batch.

Typical use::

    from repro.engine import PreparationEngine, PreparationJob

    engine = PreparationEngine(executor="parallel")
    jobs = [PreparationJob(dims=(3, 6, 2), family="ghz"),
            PreparationJob(dims=(2, 2, 2), family="w")]
    batch = engine.run_batch(jobs)
    for outcome in batch.successes:
        print(outcome.job.label, outcome.report.operations)
    print(engine.stats())
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Mapping
from dataclasses import asdict, dataclass, fields

from repro.core.preparation import prepare_state
from repro.pipeline.pipeline import Pipeline
from repro.states.statevector import StateVector
from repro.engine.cache import CacheEntry, CircuitCache
from repro.engine.executor import ExecutionBackend, as_executor
from repro.exceptions import EngineError
from repro.engine.jobs import PreparationJob, content_key
from repro.obs import log as obs_log
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.simulator.fused_sim import (
    shared_matrix_cache,
    shared_plan_cache,
)
from repro.engine.results import (
    BatchResult,
    JobFailure,
    JobOutcome,
    JobSuccess,
)

__all__ = ["EngineStats", "PreparationEngine"]


_LOGGER = obs_log.get_logger("engine")


def _execute_job(
    task: tuple[PreparationJob, str, StateVector, Pipeline | None],
) -> JobOutcome:
    """Worker entry point: run one job's pipeline, capturing any error.

    The target state is resolved exactly once, by ``run_batch`` when
    it computes the content key, and shipped here with the task —
    re-resolving would let a nondeterministic builder (e.g. an
    unseeded random family) hand the worker a *different* state than
    the one the key addresses, poisoning the cache.  ``pipeline`` is
    the engine's custom pipeline (``None`` runs the default pipeline
    for the job's config).

    An optional fifth task element carries tracing state:

    * under the serial executor, the request's live
      ``(trace, parent_span)`` — re-established as the current trace
      around the pipeline run, under an ``execute`` span, so every
      pipeline pass lands as a span of the right request;
    * under a process-pool executor, a picklable
      ``("ledger", trace_id, parent_span_id)`` sentinel — the worker
      records the same spans into a private :class:`~repro.obs.Trace`
      and returns ``(outcome, trace.export())`` so the engine grafts
      the subtree back onto the live request trace.

    Module-level so it pickles for ``ProcessPoolExecutor`` dispatch.
    """
    job, key, state, pipeline = task[:4]
    traced = task[4] if len(task) > 4 else None
    start = time.perf_counter()
    ledger_trace = None
    if (
        isinstance(traced, tuple)
        and len(traced) == 3
        and traced[0] == "ledger"
    ):
        ledger_trace = tracing.Trace(traced[1], transport="worker")
        ledger_trace.remote_parent = traced[2]
        traced = (ledger_trace, None)
    execute_span = None
    tokens = None
    if traced is not None:
        trace, parent = traced
        execute_span = trace.begin_span(
            "execute", parent=parent, start=start, key=key[:16]
        )
        tokens = (
            tracing.CURRENT_TRACE.set(trace),
            tracing.CURRENT_SPAN.set(execute_span),
        )

    def _deliver(outcome: JobOutcome):
        if ledger_trace is None:
            return outcome
        # Close the execute span before exporting (the enclosing
        # ``finally`` only runs after this return value is built);
        # ``finish`` is idempotent, so the second call is a no-op.
        if execute_span is not None:
            execute_span.finish()
        return outcome, ledger_trace.export()

    try:
        result = prepare_state(
            state, config=job.options, pipeline=pipeline
        )
        return _deliver(JobSuccess(
            job=job,
            key=key,
            circuit=result.circuit,
            report=result.report,
            cache_hit=False,
            elapsed=time.perf_counter() - start,
            stage_timings=tuple(
                (timing.stage, timing.seconds)
                for timing in result.timings
            ),
        ))
    except Exception as error:  # noqa: BLE001 - per-job isolation
        if execute_span is not None:
            execute_span.annotate(
                error=type(error).__name__
            )
        return _deliver(JobFailure(
            job=job,
            key=key,
            error_type=type(error).__name__,
            message=str(error),
            elapsed=time.perf_counter() - start,
        ))
    finally:
        if tokens is not None:
            tracing.CURRENT_SPAN.reset(tokens[1])
            tracing.CURRENT_TRACE.reset(tokens[0])
        if execute_span is not None:
            execute_span.finish()


@dataclass(frozen=True)
class EngineStats:
    """Lifetime counters of one engine instance.

    Attributes:
        jobs_submitted: Jobs seen across all batches.
        jobs_executed: Jobs that actually ran synthesis (cache misses
            after deduplication).
        jobs_failed: Jobs that ended in a :class:`JobFailure`.
        cache_lookups / cache_hits / cache_misses / cache_stores /
            cache_evictions / disk_hits / disk_write_errors:
            Forwarded from the circuit cache
            (``cache_hits + cache_misses == cache_lookups``).
        total_wall_time: Summed wall time of all ``run_batch`` calls.
    """

    jobs_submitted: int
    jobs_executed: int
    jobs_failed: int
    cache_lookups: int
    cache_hits: int
    cache_misses: int
    cache_stores: int
    cache_evictions: int
    disk_hits: int
    disk_write_errors: int
    total_wall_time: float

    def to_dict(self) -> dict[str, object]:
        """Flat JSON-ready form (one ``json.dumps`` away from the
        wire); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineStats":
        """Rebuild a snapshot from :meth:`to_dict` output (extra keys
        are ignored so older clients tolerate newer servers)."""
        return cls(**{
            spec.name: payload[spec.name] for spec in fields(cls)
        })

    def summary(self) -> str:
        """One-line human-readable form (used by the CLI)."""
        text = (
            f"jobs={self.jobs_submitted} executed={self.jobs_executed} "
            f"failed={self.jobs_failed} cache_hits={self.cache_hits} "
            f"cache_misses={self.cache_misses} "
            f"evictions={self.cache_evictions} "
            f"wall={self.total_wall_time:.3f}s"
        )
        if self.disk_write_errors:
            text += f" disk_write_errors={self.disk_write_errors}"
        return text


class PreparationEngine:
    """Batched, cached, parallel state-preparation front end.

    Args:
        cache: A :class:`CircuitCache` — or any object with the same
            ``get`` / ``get_if_present`` / ``peek`` / ``put`` /
            ``clear`` / ``stats`` surface, such as
            :class:`repro.service.ShardedCache` — or ``None`` for a
            default in-memory cache.
        executor: An :class:`ExecutionBackend`, ``"serial"``,
            ``"parallel"``, or ``None`` (serial).
        pipeline: A custom :class:`~repro.pipeline.Pipeline` every job
            runs through, or ``None`` for the default pipeline of each
            job's config.  The pipeline's ``signature()`` is folded
            into every cache key, so entries computed by different
            pipelines never alias; it must be picklable to use the
            parallel executor.
        metrics: A :class:`~repro.obs.MetricsRegistry` to publish
            engine metrics into: the per-executed-job latency
            histogram ``repro_job_execute_seconds`` plus a scrape-time
            collector exposing the lifetime :class:`EngineStats`
            counters (cache traffic, jobs) and the ``repro_dd_*``
            gauges (node count and arena footprint of the most
            recently executed job).  ``None`` leaves the engine
            un-instrumented.
    """

    def __init__(
        self,
        cache: CircuitCache | None = None,
        executor: ExecutionBackend | str | None = None,
        pipeline: Pipeline | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.cache = cache if cache is not None else CircuitCache()
        self.executor = as_executor(executor)
        self._pipeline = pipeline
        self._pipeline_signature = (
            pipeline.signature() if pipeline is not None else None
        )
        self.metrics = metrics
        self._job_seconds = None
        if metrics is not None:
            self._job_seconds = metrics.histogram(
                "repro_job_execute_seconds",
                "Wall time of each executed (cache-missing) job.",
            )
            metrics.register_collector(self._collect_samples)
        self._jobs_submitted = 0
        self._jobs_executed = 0
        self._jobs_failed = 0
        self._total_wall_time = 0.0
        # (dd_nodes, dd_peak_arena_bytes, dd_bytes_per_node) of the
        # most recently executed successful job — gauge semantics.
        self._last_dd_stats = (0, 0, 0.0)
        # Guards only the engine's own counters.  The cache locks
        # itself (per shard under a ShardedCache), so concurrent
        # run_batch calls proceed in parallel instead of serialising
        # on one engine-wide lock.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> Pipeline | None:
        """The engine's custom pipeline (read-only).

        Read-only because the cache keys of everything this engine
        has stored embed the pipeline's signature: swapping the
        pipeline on a live engine would serve the old pipeline's
        circuits under the new one's identity.  Build a new engine
        (sharing the same cache object is fine — the signatures keep
        the entries apart) to run a different pipeline.
        """
        return self._pipeline

    def submit(self, job: PreparationJob) -> JobOutcome:
        """Run a single job through the cache and executor."""
        return self.run_batch([job]).outcomes[0]

    def job_key(self, job: PreparationJob) -> str:
        """Content key of ``job`` under this engine's pipeline.

        Resolves the target state (so it raises whatever
        ``resolve_state`` raises for an impossible job) and folds in
        the engine's custom-pipeline signature, exactly as
        ``run_batch`` keys the job.  The serving layer uses this to
        route batches to cache shards before dispatch.
        """
        return content_key(
            job.resolve_state(), job.options, self._pipeline_signature
        )

    def run_batch(
        self,
        jobs: Iterable[PreparationJob],
        *,
        keys: Iterable[str | None] | None = None,
    ) -> BatchResult:
        """Execute a batch, returning outcomes in submission order.

        Identical jobs (same content key) are synthesised once per
        batch; the duplicates are served as cache hits.  Per-job
        errors are captured as :class:`JobFailure` outcomes.

        Args:
            jobs: The jobs to run.
            keys: Optional precomputed content keys (as returned by
                :meth:`job_key`), parallel to ``jobs``; ``None``
                entries are computed here.  A caller that already
                keyed the jobs — the serving layer keys them for
                shard routing — avoids a second state resolution:
                slots with a provided key only resolve their state if
                they miss the cache.

        Thread-safe: the cache locks itself (per shard under a
        :class:`~repro.service.ShardedCache`) and the engine counters
        sit behind their own lock, so concurrent batches run in
        parallel.  Two *concurrent* batches missing the same key both
        synthesise it (identical results, but each counts its own
        miss); callers that need batch-composition-independent
        counters serialise same-shard batches, as
        :class:`~repro.service.AsyncPreparationService` does with its
        per-shard dispatch locks.
        """
        jobs = list(jobs)
        provided_keys = list(keys) if keys is not None else None
        if provided_keys is not None and len(provided_keys) != len(jobs):
            raise EngineError(
                f"keys must parallel jobs: got {len(provided_keys)} "
                f"keys for {len(jobs)} jobs"
            )
        start = time.perf_counter()
        return self._run_batch(jobs, start, provided_keys)

    def _run_batch(
        self,
        jobs: list[PreparationJob],
        start: float,
        provided_keys: list[str | None] | None = None,
    ) -> BatchResult:
        with self._stats_lock:
            self._jobs_submitted += len(jobs)
        outcomes: list[JobOutcome | None] = [None] * len(jobs)

        # Per-job (trace, parent_span) pairs, planted by the service's
        # dispatch coroutine just before asyncio.to_thread — the
        # context copy carried them into this worker thread.
        traces = tracing.DISPATCH_TRACES.get(None)
        if traces is not None and len(traces) != len(jobs):
            traces = None

        def traced_at(position: int):
            if traces is None:
                return None
            return traces[position]

        # Key every job up front — from the caller where provided,
        # else by resolving the state here; a job whose state cannot
        # even be built fails here without touching a worker.
        keys: list[str | None] = [None] * len(jobs)
        states: list[StateVector | None] = [None] * len(jobs)
        for position, job in enumerate(jobs):
            if (
                provided_keys is not None
                and provided_keys[position] is not None
            ):
                keys[position] = provided_keys[position]
                continue
            try:
                states[position] = job.resolve_state()
                keys[position] = content_key(
                    states[position],
                    job.options,
                    self._pipeline_signature,
                )
            except Exception as error:  # noqa: BLE001
                outcomes[position] = JobFailure(
                    job=job,
                    key=None,
                    error_type=type(error).__name__,
                    message=str(error),
                )

        # Cache lookups plus intra-batch deduplication: the first
        # occurrence of each missing key is dispatched, later
        # duplicates wait and are served from the stored result.
        dispatch: dict[str, int] = {}
        duplicates: list[int] = []
        for position, job in enumerate(jobs):
            key = keys[position]
            if key is None:
                continue
            if key in dispatch:
                # A known intra-batch duplicate cannot be in the cache
                # (its primary just missed); probing again would count
                # a second spurious miss for the same logical lookup.
                duplicates.append(position)
                continue
            entry = self.cache.get(key)
            if entry is not None:
                outcomes[position] = JobSuccess(
                    job=job,
                    key=key,
                    circuit=entry.circuit,
                    report=entry.report,
                    cache_hit=True,
                )
                traced = traced_at(position)
                if traced is not None:
                    trace, parent = traced
                    trace.add_span(
                        "cache_hit",
                        start=trace.offset(),
                        duration=0.0,
                        parent=parent,
                        key=key[:16],
                    )
            else:
                dispatch[key] = position

        # Execute the unique misses on the configured backend.  A job
        # that arrived with a precomputed key resolves its state only
        # now — cache hits never needed it.  The key is then
        # recomputed from the state actually resolved, so a
        # nondeterministic builder (an unseeded random family) can
        # never store a circuit under a key addressing a *different*
        # state than the one synthesised.
        tasks = []
        task_positions: list[int] = []
        for key, position in dispatch.items():
            state = states[position]
            if state is None:
                try:
                    state = jobs[position].resolve_state()
                except Exception as error:  # noqa: BLE001
                    outcomes[position] = JobFailure(
                        job=jobs[position],
                        key=key,
                        error_type=type(error).__name__,
                        message=str(error),
                    )
                    continue
                key = content_key(
                    state,
                    jobs[position].options,
                    self._pipeline_signature,
                )
            task = (jobs[position], key, state, self._pipeline)
            traced = traced_at(position)
            if traced is not None:
                if self.executor.name == "serial":
                    # The in-thread serial executor records straight
                    # into the live trace (traces hold locks and
                    # context references — they do not pickle).
                    task = task + (traced,)
                else:
                    # Process-pool workers get a picklable sentinel;
                    # they record into a private per-job ledger and
                    # return it for grafting below.
                    trace, parent = traced
                    task = task + ((
                        "ledger",
                        trace.request_id,
                        parent.span_id if parent is not None else None,
                    ),)
            tasks.append(task)
            task_positions.append(position)
        with self._stats_lock:
            self._jobs_executed += len(tasks)
        for position, delivered in zip(
            task_positions, self.executor.run(_execute_job, tasks)
        ):
            ledger = None
            if isinstance(delivered, tuple):
                outcome, ledger = delivered
            else:
                outcome = delivered
            if ledger is not None:
                traced = traced_at(position)
                if traced is not None:
                    trace, parent = traced
                    trace.graft(
                        ledger, parent=parent,
                        worker_pid=ledger.get("pid"),
                    )
            outcomes[position] = outcome
            if self._job_seconds is not None and outcome.elapsed:
                self._job_seconds.observe(outcome.elapsed)
            if outcome.ok:
                report = outcome.report
                with self._stats_lock:
                    self._last_dd_stats = (
                        report.dd_nodes,
                        report.dd_peak_arena_bytes,
                        report.dd_bytes_per_node,
                    )
                self.cache.put(
                    CacheEntry(
                        key=outcome.key,
                        circuit=outcome.circuit,
                        report=outcome.report,
                    )
                )

        # Serve intra-batch duplicates; the cache now holds every key
        # whose primary job succeeded, so these lookups count as hits.
        # ``get_if_present`` counts a hit (with LRU refresh and disk
        # promotion) but records nothing for an absent key: a cache
        # that retains nothing (capacity 0, no disk) must not log a
        # spurious *miss* for a slot that is served from the primary
        # outcome either way.
        for position in duplicates:
            key = keys[position]
            traced = traced_at(position)
            if traced is not None:
                trace, parent = traced
                trace.add_span(
                    "cache_hit",
                    start=trace.offset(),
                    duration=0.0,
                    parent=parent,
                    key=key[:16],
                    deduplicated=True,
                )
            entry = self.cache.get_if_present(key)
            if entry is not None:
                outcomes[position] = JobSuccess(
                    job=jobs[position],
                    key=key,
                    circuit=entry.circuit,
                    report=entry.report,
                    cache_hit=True,
                )
            else:
                # Nothing cached: either the primary failed, or the
                # cache is configured to keep nothing (capacity 0, no
                # disk) — serve the duplicate from the primary outcome.
                primary = outcomes[dispatch[key]]
                if primary.ok:
                    outcomes[position] = JobSuccess(
                        job=jobs[position],
                        key=key,
                        circuit=primary.circuit,
                        report=primary.report,
                        cache_hit=True,
                    )
                else:
                    outcomes[position] = JobFailure(
                        job=jobs[position],
                        key=key,
                        error_type=primary.error_type,
                        message=primary.message,
                    )

        wall_time = time.perf_counter() - start
        failed = sum(1 for outcome in outcomes if not outcome.ok)
        with self._stats_lock:
            self._jobs_failed += failed
            self._total_wall_time += wall_time
        _LOGGER.debug(
            "batch_executed",
            jobs=len(jobs),
            executed=len(tasks),
            failed=failed,
            duration=round(wall_time, 6),
        )
        return BatchResult(outcomes=tuple(outcomes), wall_time=wall_time)

    def _collect_samples(self):
        """Scrape-time samples of the lifetime engine counters."""
        stats = self.stats()
        with self._stats_lock:
            dd_nodes, dd_peak_bytes, dd_bytes_per_node = (
                self._last_dd_stats
            )
        return [
            ("repro_jobs_submitted_total", "counter",
             "Jobs seen across all batches.", stats.jobs_submitted),
            ("repro_jobs_executed_total", "counter",
             "Jobs that ran synthesis (cache misses after dedup).",
             stats.jobs_executed),
            ("repro_jobs_failed_total", "counter",
             "Jobs that ended in a JobFailure.", stats.jobs_failed),
            ("repro_cache_lookups_total", "counter",
             "Circuit-cache lookups (hits + misses).",
             stats.cache_lookups),
            ("repro_cache_hits_total", "counter",
             "Circuit-cache hits.", stats.cache_hits),
            ("repro_cache_misses_total", "counter",
             "Circuit-cache misses.", stats.cache_misses),
            ("repro_cache_stores_total", "counter",
             "Circuits stored into the cache.", stats.cache_stores),
            ("repro_cache_evictions_total", "counter",
             "Cache entries evicted by capacity.",
             stats.cache_evictions),
            ("repro_disk_hits_total", "counter",
             "Lookups served from the persistent disk cache.",
             stats.disk_hits),
            ("repro_disk_write_errors_total", "counter",
             "Failed disk-cache writes.", stats.disk_write_errors),
            ("repro_dd_nodes", "gauge",
             "DD node count of the most recently executed job.",
             dd_nodes),
            ("repro_dd_peak_arena_bytes", "gauge",
             "Peak arena bytes of the most recently executed job "
             "(0 on the object node-store path).",
             dd_peak_bytes),
            ("repro_dd_bytes_per_node", "gauge",
             "Peak arena bytes per DD node of the most recently "
             "executed job (0 on the object path).",
             dd_bytes_per_node),
            ("repro_fused_plan_cache_entries", "gauge",
             "Fusion plans held by the process-wide plan cache.",
             len(shared_plan_cache())),
            ("repro_gate_matrix_cache_entries", "gauge",
             "Local gate matrices held by the process-wide memo.",
             len(shared_matrix_cache())),
        ]

    def stats(self) -> EngineStats:
        """Snapshot of lifetime engine + cache counters."""
        cache_stats = self.cache.stats
        return EngineStats(
            jobs_submitted=self._jobs_submitted,
            jobs_executed=self._jobs_executed,
            jobs_failed=self._jobs_failed,
            cache_lookups=cache_stats.lookups,
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            cache_stores=cache_stats.stores,
            cache_evictions=cache_stats.evictions,
            disk_hits=cache_stats.disk_hits,
            disk_write_errors=cache_stats.disk_write_errors,
            total_wall_time=self._total_wall_time,
        )

    def __repr__(self) -> str:
        return (
            f"PreparationEngine(executor={self.executor!r}, "
            f"cache_entries={len(self.cache)})"
        )
