"""The batch-spec JSON format and its parser.

A batch spec is a JSON document describing a list of preparation jobs
plus optional shared defaults (see ``docs/engine.md`` for the full
format reference)::

    {
      "defaults": {"min_fidelity": 1.0, "verify": true},
      "jobs": [
        {"family": "ghz", "dims": [3, 6, 2]},
        {"family": "random", "dims": [3, 3], "params": {"rng": 7}},
        {"amplitudes": [1, 0, 0, [0.0, 1.0]], "dims": [2, 2],
         "label": "bell-y"}
      ]
    }

Job fields:

* ``dims`` (required) — list of qudit dimensions, most significant
  first,
* exactly one of ``family`` (a name from
  :data:`~repro.engine.jobs.FAMILY_BUILDERS`, with builder keyword
  arguments in ``params``) or ``amplitudes`` (numbers, ``[re, im]``
  pairs, or strings such as ``"1+2j"``),
* ``label`` — optional display name,
* any :class:`~repro.engine.jobs.SynthesisOptions` field
  (``min_fidelity``, ``tensor_elision``, ``emit_identity_rotations``,
  ``verify``, ``approximation_granularity``, ``transpile``),
  overriding the document-level ``defaults``.

A :class:`~repro.pipeline.PipelineConfig` can be layered on top of a
spec via ``defaults_override`` (the CLI's ``--pipeline config.json``):
its entries are merged over the document-level ``defaults`` field-wise
(unnamed fields keep the spec's values), while per-job fields still
win.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from dataclasses import fields
from pathlib import Path

from repro.engine.jobs import PreparationJob, SynthesisOptions
from repro.exceptions import JobSpecError

__all__ = ["job_from_dict", "jobs_from_spec", "load_batch_spec"]

_OPTION_FIELDS = frozenset(
    spec.name for spec in fields(SynthesisOptions)
)
_JOB_FIELDS = frozenset(
    {"dims", "family", "params", "amplitudes", "label"}
) | _OPTION_FIELDS


def _parse_amplitude(value: object, where: str) -> complex:
    if isinstance(value, (int, float)):
        return complex(value)
    if isinstance(value, str):
        try:
            return complex(value)
        except ValueError as error:
            raise JobSpecError(
                f"{where}: bad amplitude string {value!r}"
            ) from error
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(part, (int, float)) for part in value)
    ):
        return complex(value[0], value[1])
    raise JobSpecError(
        f"{where}: amplitudes must be numbers, [re, im] pairs, or "
        f"complex strings, got {value!r}"
    )


def job_from_dict(
    raw: Mapping[str, object],
    defaults: Mapping[str, object] | None = None,
    where: str = "job",
) -> PreparationJob:
    """Build one job from its JSON-dict form.

    Args:
        raw: The job dictionary.
        defaults: Option values applied where the job has none.
        where: Context string prefixed to error messages.

    Raises:
        JobSpecError: On unknown fields, missing ``dims``, or any
            invalid value.
    """
    if not isinstance(raw, Mapping):
        raise JobSpecError(f"{where}: expected an object, got {raw!r}")
    unknown = set(raw) - _JOB_FIELDS
    if unknown:
        raise JobSpecError(
            f"{where}: unknown fields {sorted(unknown)}; "
            f"allowed: {sorted(_JOB_FIELDS)}"
        )
    if "dims" not in raw:
        raise JobSpecError(f"{where}: missing required field 'dims'")

    merged_options: dict[str, object] = dict(defaults or {})
    merged_options.update(
        {name: raw[name] for name in _OPTION_FIELDS if name in raw}
    )
    try:
        options = SynthesisOptions(**merged_options)
    except JobSpecError as error:
        raise JobSpecError(f"{where}: {error}") from error

    amplitudes = raw.get("amplitudes")
    if amplitudes is not None:
        if not isinstance(amplitudes, (list, tuple)):
            raise JobSpecError(
                f"{where}: 'amplitudes' must be a list"
            )
        amplitudes = [
            _parse_amplitude(value, where) for value in amplitudes
        ]
    params = raw.get("params", {})
    if not isinstance(params, Mapping):
        raise JobSpecError(f"{where}: 'params' must be an object")
    try:
        dims = tuple(int(d) for d in raw["dims"])
    except (TypeError, ValueError) as error:
        raise JobSpecError(
            f"{where}: 'dims' must be a list of integers, "
            f"got {raw['dims']!r}"
        ) from error
    try:
        return PreparationJob(
            dims=dims,
            family=raw.get("family"),
            params=params,
            amplitudes=amplitudes,
            options=options,
            label=raw.get("label"),
        )
    except JobSpecError as error:
        raise JobSpecError(f"{where}: {error}") from error


def jobs_from_spec(
    document: Mapping[str, object],
    defaults_override: Mapping[str, object] | None = None,
) -> list[PreparationJob]:
    """Parse a whole batch-spec document into jobs.

    Args:
        document: The batch-spec JSON document.
        defaults_override: Option values layered over the document's
            ``defaults`` (typically a ``PipelineConfig.to_dict()``
            from the CLI's ``--pipeline`` flag); per-job fields still
            take precedence.

    Raises:
        JobSpecError: On structural problems or any invalid job.
    """
    if not isinstance(document, Mapping):
        raise JobSpecError(
            f"batch spec must be a JSON object, got {document!r}"
        )
    unknown = set(document) - {"jobs", "defaults"}
    if unknown:
        raise JobSpecError(
            f"batch spec: unknown top-level fields {sorted(unknown)}"
        )
    raw_jobs = document.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise JobSpecError(
            "batch spec needs a non-empty 'jobs' list"
        )
    defaults = document.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise JobSpecError("batch spec: 'defaults' must be an object")
    bad_defaults = set(defaults) - _OPTION_FIELDS
    if bad_defaults:
        raise JobSpecError(
            f"batch spec: 'defaults' only takes synthesis options, "
            f"got {sorted(bad_defaults)}"
        )
    if defaults_override:
        bad_override = set(defaults_override) - _OPTION_FIELDS
        if bad_override:
            raise JobSpecError(
                f"defaults override only takes synthesis options, "
                f"got {sorted(bad_override)}"
            )
        defaults = {**defaults, **defaults_override}
    return [
        job_from_dict(raw, defaults=defaults, where=f"jobs[{position}]")
        for position, raw in enumerate(raw_jobs)
    ]


def load_batch_spec(
    path: str | os.PathLike,
    defaults_override: Mapping[str, object] | None = None,
) -> list[PreparationJob]:
    """Read and parse a batch-spec JSON file.

    Args:
        path: The spec file.
        defaults_override: See :func:`jobs_from_spec`.

    Raises:
        JobSpecError: If the file is unreadable, not valid JSON, or
            describes invalid jobs.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise JobSpecError(
            f"cannot read batch spec {path}: {error}"
        ) from error
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise JobSpecError(
            f"batch spec {path} is not valid JSON: {error}"
        ) from error
    return jobs_from_spec(document, defaults_override=defaults_override)
