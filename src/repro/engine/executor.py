"""Execution backends: serial and process-pool parallel.

Both backends expose one method, ``run(worker, items)``, which applies
a picklable ``worker`` to every item and returns the results **in item
order**.  The engine's worker captures per-job exceptions itself and
returns :class:`~repro.engine.results.JobFailure` values, so a backend
only has to deliver results; it never needs per-item error handling.

:class:`ParallelExecutor` dispatches in chunks to amortise
inter-process pickling overhead.  Results are deterministic: the same
batch produces the same result list regardless of backend or worker
count (timing fields aside).
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, process
from typing import TypeVar

from repro.exceptions import EngineError

__all__ = [
    "ExecutionBackend",
    "ParallelExecutor",
    "SerialExecutor",
    "as_executor",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class ExecutionBackend:
    """Interface of an execution backend."""

    name = "abstract"

    def run(
        self,
        worker: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
    ) -> list[ResultT]:
        raise NotImplementedError


class SerialExecutor(ExecutionBackend):
    """Run every item in the calling process, one after another."""

    name = "serial"

    def run(self, worker, items):
        return [worker(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(ExecutionBackend):
    """Run items on a ``ProcessPoolExecutor`` in chunked dispatch.

    Args:
        max_workers: Worker process count; defaults to the CPU count
            capped at 8 (synthesis jobs are CPU-bound, more workers
            than cores only add overhead).
        chunk_size: Items pickled per dispatch; defaults to spreading
            the batch roughly four chunks per worker so stragglers
            rebalance.

    Raises:
        EngineError: If ``max_workers`` or ``chunk_size`` is < 1.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ):
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        if max_workers < 1:
            raise EngineError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.max_workers = max_workers
        self.chunk_size = chunk_size

    def _resolve_chunk_size(
        self, num_items: int, num_workers: int | None = None
    ) -> int:
        """Chunk size for ``num_items`` spread over ``num_workers``.

        ``run`` clamps the pool to ``min(max_workers, len(items))``
        and passes that *actual* worker count here; the default target
        of roughly four chunks per worker is computed against it, not
        against the configured ``max_workers``, so a pool that is
        effectively smaller than configured gets proportionally larger
        chunks.  ``None`` falls back to the same clamp.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if num_workers is None:
            num_workers = min(self.max_workers, max(num_items, 1))
        return max(1, math.ceil(num_items / (num_workers * 4)))

    def run(self, worker, items):
        items = list(items)
        if not items:
            return []
        workers = min(self.max_workers, len(items))
        chunk_size = self._resolve_chunk_size(len(items), workers)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # ``map`` preserves item order, giving deterministic
                # result ordering independent of completion order.
                return list(
                    pool.map(worker, items, chunksize=chunk_size)
                )
        except process.BrokenProcessPool as error:
            raise EngineError(
                "worker pool died mid-batch (a worker was killed or "
                f"crashed hard): {error}"
            ) from error

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(max_workers={self.max_workers}, "
            f"chunk_size={self.chunk_size})"
        )


def as_executor(
    executor: ExecutionBackend | str | None,
) -> ExecutionBackend:
    """Coerce a backend, backend name, or ``None`` to a backend.

    ``None`` and ``"serial"`` give :class:`SerialExecutor`;
    ``"parallel"`` gives a default :class:`ParallelExecutor`.

    Raises:
        EngineError: For an unknown backend name or type.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, ExecutionBackend):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "parallel":
        return ParallelExecutor()
    raise EngineError(
        f"unknown executor {executor!r}; expected 'serial', "
        "'parallel', or an ExecutionBackend instance"
    )
