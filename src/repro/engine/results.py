"""Structured per-job and per-batch results of the engine.

A batch never raises for an individual job: each submitted
:class:`~repro.engine.PreparationJob` yields either a
:class:`JobSuccess` carrying the synthesised circuit and its
:class:`~repro.core.report.SynthesisReport`, or a :class:`JobFailure`
recording what went wrong.  Results come back in submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.circuit.circuit import Circuit
from repro.core.report import SynthesisReport
from repro.engine.jobs import PreparationJob
from repro.pipeline.context import aggregate_timings

__all__ = [
    "BatchResult",
    "JobFailure",
    "JobOutcome",
    "JobSuccess",
    "comparable_outcome",
    "comparable_report",
]


@dataclass(frozen=True)
class JobSuccess:
    """A synthesised preparation circuit plus its Table 1 metrics.

    Attributes:
        job: The job that produced this result.
        key: Content key of (target state, options) — the cache
            address of this circuit.
        circuit: The preparation circuit.  ``None`` only for outcomes
            relayed from a remote cluster shard without circuit
            transfer (``fetch_circuits=False``).
        report: Metrics of the synthesis run.  For cache hits this is
            the report recorded when the entry was first computed.
        cache_hit: Whether the circuit came from the cache.
        elapsed: Wall time spent on this job in the worker (seconds);
            effectively zero for cache hits.
        stage_timings: Per-stage ``(stage, seconds)`` pairs of the
            pipeline run, in execution order; empty for cache hits
            (no stages ran).
    """

    job: PreparationJob
    key: str
    circuit: Circuit | None
    report: SynthesisReport
    cache_hit: bool = False
    elapsed: float = 0.0
    stage_timings: tuple[tuple[str, float], ...] = ()

    def stage_timings_dict(self) -> dict[str, float]:
        """Stage ledger as ``{stage: seconds}`` (summing repeats)."""
        return aggregate_timings(self.stage_timings)

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class JobFailure:
    """A captured per-job error; never propagates out of a batch.

    Attributes:
        job: The job that failed.
        key: Content key when the target state could be resolved,
            ``None`` when resolution itself failed.
        error_type: Exception class name (e.g. ``"DimensionError"``).
        message: Stringified exception message.
        elapsed: Wall time spent before the failure (seconds).
    """

    job: PreparationJob
    key: str | None
    error_type: str
    message: str
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return False


JobOutcome = Union[JobSuccess, JobFailure]


def comparable_report(report: SynthesisReport) -> SynthesisReport:
    """Return the report with execution-dependent columns zeroed.

    Synthesis metrics are deterministic; wall times (build, synthesis,
    verify) are not, and the ``dd_*`` storage-accounting columns
    depend on the node-store backend rather than on the synthesis
    result.  Serial and parallel executions of the same batch
    therefore agree exactly on ``comparable_report`` form, which is
    what the equality tests and benchmarks compare.
    """
    return replace(
        report,
        synthesis_time=0.0,
        build_time=0.0,
        verify_time=0.0,
        dd_nodes=0,
        dd_peak_arena_bytes=0,
        dd_bytes_per_node=0.0,
    )


def comparable_outcome(outcome: JobOutcome) -> JobOutcome:
    """Return the outcome stripped of scheduling-dependent fields.

    Wall times and the ``cache_hit`` flag depend on *when* a job ran
    (backend, batch boundaries, arrival order), not on *what* it
    computed.  Two executions of the same job — serial batch, process
    pool, or the async serving layer — are equivalent exactly when
    their ``comparable_outcome`` forms are equal: same job, key,
    circuit, and ``comparable_report``, or the same failure.
    """
    if outcome.ok:
        return replace(
            outcome,
            report=comparable_report(outcome.report),
            cache_hit=False,
            elapsed=0.0,
            stage_timings=(),
        )
    return replace(outcome, elapsed=0.0)


@dataclass(frozen=True)
class BatchResult:
    """All outcomes of one ``run_batch`` call, in submission order."""

    outcomes: tuple[JobOutcome, ...]
    wall_time: float

    @property
    def successes(self) -> tuple[JobSuccess, ...]:
        return tuple(o for o in self.outcomes if o.ok)

    @property
    def failures(self) -> tuple[JobFailure, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def reports(self) -> tuple[SynthesisReport, ...]:
        """Reports of the successful jobs, in submission order."""
        return tuple(o.report for o in self.outcomes if o.ok)

    @property
    def num_cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and o.cache_hit)

    def __len__(self) -> int:
        return len(self.outcomes)

    def raise_on_failure(self) -> "BatchResult":
        """Raise ``EngineError`` if any job failed; else return self."""
        from repro.exceptions import EngineError

        if self.failures:
            first = self.failures[0]
            raise EngineError(
                f"{len(self.failures)} of {len(self)} jobs failed; "
                f"first: {first.job.label}: "
                f"{first.error_type}: {first.message}"
            )
        return self
