"""Declarative preparation jobs and content-addressed hashing.

A :class:`PreparationJob` describes *what* to prepare — a target state
given either as a named family from :mod:`repro.states` or as raw
amplitudes — together with the :class:`~repro.pipeline.PipelineConfig`
that controls *how* it is synthesised.  Jobs are plain picklable
values: they can be shipped to worker processes, serialised to the
batch-spec JSON format (see :mod:`repro.engine.spec`), and hashed to a
stable content key so identical requests share one cache entry.

The content key is computed from the *resolved* target state, not from
the job description, so ``{"family": "ghz", "dims": [2, 2]}`` and the
equivalent raw-amplitude job address the same cached circuit.  The key
also folds in the full pipeline configuration (every field of
:class:`~repro.pipeline.PipelineConfig`) and, when the engine runs a
custom pipeline, that pipeline's signature — so a transpiled and a
plain run of the same state can never alias.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields

import numpy as np

from repro.exceptions import JobSpecError, PipelineConfigError
from repro.pipeline.config import PipelineConfig
from repro.registers.register import QuditRegister
from repro.states import library, random_states
from repro.states.statevector import StateVector

__all__ = [
    "FAMILY_BUILDERS",
    "PreparationJob",
    "SynthesisOptions",
    "content_key",
]

#: Named state families a job may reference.  Every builder takes the
#: register first; remaining keyword arguments come from ``params``.
FAMILY_BUILDERS = {
    "basis": library.basis_state,
    "ghz": library.ghz_state,
    "w": library.w_state,
    "embedded_w": library.embedded_w_state,
    "dicke": library.dicke_state,
    "cyclic": library.cyclic_state,
    "uniform": library.uniform_state,
    "product": library.product_state,
    "random": random_states.random_state,
    "random_sparse": random_states.random_sparse_state,
}

@dataclass(frozen=True)
class SynthesisOptions(PipelineConfig):
    """A :class:`~repro.pipeline.PipelineConfig` with job-spec errors.

    Field-for-field identical to the pipeline config (``min_fidelity``,
    ``tensor_elision``, ``emit_identity_rotations``, ``verify``,
    ``approximation_granularity``, ``transpile``); invalid values
    raise :class:`~repro.exceptions.JobSpecError` so batch-spec
    parsing reports one uniform error type.  ``canonical()`` is the
    inherited content-hash form covering every field.
    """

    def __post_init__(self) -> None:
        try:
            super().__post_init__()
        except PipelineConfigError as error:
            raise JobSpecError(str(error)) from error

    @classmethod
    def from_config(cls, config: PipelineConfig) -> "SynthesisOptions":
        """Re-wrap any pipeline config as job options."""
        if isinstance(config, cls):
            return config
        return cls(**{
            spec.name: getattr(config, spec.name)
            for spec in fields(PipelineConfig)
        })


def _coerce_amplitudes(
    amplitudes: Sequence[complex] | np.ndarray,
) -> np.ndarray:
    try:
        array = np.asarray(amplitudes, dtype=np.complex128)
    except (TypeError, ValueError) as error:
        raise JobSpecError(
            f"amplitudes are not complex numbers: {error}"
        ) from error
    if array.ndim != 1 or array.size == 0:
        raise JobSpecError(
            f"amplitudes must be a non-empty 1-D sequence, "
            f"got shape {array.shape}"
        )
    array = array.copy()
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class PreparationJob:
    """One unit of work for the :class:`~repro.engine.PreparationEngine`.

    Exactly one state source must be given: a ``family`` name from
    :data:`FAMILY_BUILDERS` (with builder keyword arguments in
    ``params``) or a raw ``amplitudes`` vector.

    Attributes:
        dims: Qudit dimensions of the target register.
        family: Named state family, or ``None`` for raw amplitudes.
        params: Keyword arguments for the family builder.
        amplitudes: Raw target amplitudes (normalised on resolution).
        options: Pipeline configuration for this job; a plain
            :class:`~repro.pipeline.PipelineConfig` is accepted and
            re-validated as :class:`SynthesisOptions`.
        label: Free-form display name (defaults to a generated one).
    """

    dims: tuple[int, ...]
    family: str | None = None
    params: Mapping[str, object] = field(default_factory=dict)
    amplitudes: np.ndarray | None = None
    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    label: str | None = None

    def __post_init__(self) -> None:
        try:
            register = QuditRegister(self.dims)
        except Exception as error:
            raise JobSpecError(f"invalid dims {self.dims!r}: {error}") from error
        object.__setattr__(self, "dims", register.dims)
        if not isinstance(self.options, SynthesisOptions):
            if not isinstance(self.options, PipelineConfig):
                raise JobSpecError(
                    f"options must be a PipelineConfig, "
                    f"got {self.options!r}"
                )
            object.__setattr__(
                self, "options", SynthesisOptions.from_config(self.options)
            )
        if (self.family is None) == (self.amplitudes is None):
            raise JobSpecError(
                "exactly one of 'family' and 'amplitudes' must be given"
            )
        if self.family is not None and self.family not in FAMILY_BUILDERS:
            raise JobSpecError(
                f"unknown state family {self.family!r}; expected one of "
                f"{sorted(FAMILY_BUILDERS)}"
            )
        if self.amplitudes is not None:
            object.__setattr__(
                self, "amplitudes", _coerce_amplitudes(self.amplitudes)
            )
        object.__setattr__(self, "params", dict(self.params))
        if self.label is None:
            object.__setattr__(self, "label", self._default_label())

    def _default_label(self) -> str:
        dims_text = "x".join(str(d) for d in self.dims)
        source = self.family if self.family is not None else "amplitudes"
        return f"{source}-{dims_text}"

    def resolve_state(self) -> StateVector:
        """Build and normalise the target state this job describes.

        Raises:
            ReproError: Whatever the family builder or
                :class:`StateVector` raises for inconsistent inputs
                (wrong amplitude count, impossible family parameters,
                the zero vector, ...).  The engine captures these as
                :class:`~repro.engine.JobFailure` results.
        """
        if self.family is not None:
            builder = FAMILY_BUILDERS[self.family]
            state = builder(self.dims, **self.params)
        else:
            state = StateVector(self.amplitudes, self.dims)
        return state.normalized()

    def describe(self) -> dict[str, object]:
        """Flatten to a JSON-compatible description (for logs/CLI)."""
        description: dict[str, object] = {
            "label": self.label,
            "dims": list(self.dims),
        }
        if self.family is not None:
            description["family"] = self.family
            if self.params:
                description["params"] = dict(self.params)
        else:
            description["amplitudes"] = [
                [float(a.real), float(a.imag)] for a in self.amplitudes
            ]
        defaults = SynthesisOptions()
        for spec in fields(SynthesisOptions):
            value = getattr(self.options, spec.name)
            if value != getattr(defaults, spec.name):
                description[spec.name] = value
        return description


def content_key(
    state: StateVector,
    options: PipelineConfig,
    pipeline_signature: str | None = None,
) -> str:
    """Stable content hash of a resolved target state plus config.

    Two jobs share a key exactly when they request the same normalised
    amplitudes over the same register with the same full pipeline
    configuration — regardless of how the state was described (family
    vs. raw amplitudes).  Every config field participates (via
    ``canonical()``), so e.g. a transpiled and a plain run never
    alias.  An engine running a custom pipeline passes that pipeline's
    ``signature()`` so its entries stay distinct from the default
    pipeline's.  The key is a hex SHA-256 digest, safe as a filename
    for the on-disk cache.
    """
    digest = hashlib.sha256()
    digest.update(",".join(str(d) for d in state.dims).encode())
    digest.update(b"|")
    digest.update(np.ascontiguousarray(state.amplitudes).tobytes())
    digest.update(b"|")
    digest.update(options.canonical().encode())
    if pipeline_signature is not None:
        digest.update(b"|pipeline=")
        digest.update(pipeline_signature.encode())
    return digest.hexdigest()
