"""Batched, cached, parallel state-preparation engine.

The orchestration layer on top of the single-shot
:func:`repro.prepare_state` pipeline:

* :mod:`repro.engine.jobs` — declarative :class:`PreparationJob`
  specs with validation and stable content hashing,
* :mod:`repro.engine.cache` — a content-addressed LRU circuit cache
  with an optional on-disk layer,
* :mod:`repro.engine.executor` — serial and process-pool execution
  backends behind one interface,
* :mod:`repro.engine.engine` — the :class:`PreparationEngine` facade
  (``submit`` / ``run_batch`` / ``stats``),
* :mod:`repro.engine.spec` — the batch-spec JSON format consumed by
  ``python -m repro batch``.

See ``docs/engine.md`` for the architecture notes.
"""

from repro.engine.cache import CacheEntry, CacheStats, CircuitCache
from repro.engine.engine import EngineStats, PreparationEngine
from repro.engine.executor import (
    ExecutionBackend,
    ParallelExecutor,
    SerialExecutor,
    as_executor,
)
from repro.engine.jobs import (
    FAMILY_BUILDERS,
    PreparationJob,
    SynthesisOptions,
    content_key,
)
from repro.engine.results import (
    BatchResult,
    JobFailure,
    JobOutcome,
    JobSuccess,
    comparable_outcome,
    comparable_report,
)
from repro.engine.spec import job_from_dict, jobs_from_spec, load_batch_spec

__all__ = [
    "BatchResult",
    "CacheEntry",
    "CacheStats",
    "CircuitCache",
    "EngineStats",
    "ExecutionBackend",
    "FAMILY_BUILDERS",
    "JobFailure",
    "JobOutcome",
    "JobSuccess",
    "ParallelExecutor",
    "PreparationEngine",
    "PreparationJob",
    "SerialExecutor",
    "SynthesisOptions",
    "as_executor",
    "comparable_outcome",
    "comparable_report",
    "content_key",
    "job_from_dict",
    "jobs_from_spec",
    "load_batch_spec",
]
