"""Dense statevector simulation of mixed-dimensional qudit circuits.

Gates are applied by reshaping the amplitude vector into one tensor
axis per qudit, slicing out the control-satisfying subspace, and
contracting the target axis with the gate's local matrix.  Cost is
``O(prod(dims) * d_target)`` per gate.
"""

from __future__ import annotations

import cmath

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate
from repro.exceptions import SimulationError
from repro.states.statevector import StateVector

__all__ = ["apply_gate", "simulate"]


def apply_gate(state: StateVector, gate: Gate) -> StateVector:
    """Apply one (possibly multi-controlled) gate to a state.

    Args:
        state: Input state.
        gate: Gate to apply; validated against the state's register.

    Returns:
        The output state (a new object; inputs are never mutated).
    """
    dims = state.dims
    gate.validate(dims)
    tensor = state.as_tensor().copy()
    local = gate.matrix(dims[gate.target])

    index: list[object] = [slice(None)] * len(dims)
    for control in gate.controls:
        index[control.qudit] = control.level
    selector = tuple(index)

    subspace = tensor[selector]
    # Integer indices collapse control axes, shifting the target axis
    # left by the number of controls preceding it.
    axis = gate.target - sum(
        1 for control in gate.controls if control.qudit < gate.target
    )
    moved = np.moveaxis(subspace, axis, 0)
    transformed = np.tensordot(local, moved, axes=(1, 0))
    tensor[selector] = np.moveaxis(transformed, 0, axis)
    return StateVector(tensor.reshape(-1), state.register)


def simulate(
    circuit: Circuit,
    initial: StateVector | None = None,
) -> StateVector:
    """Run a circuit on an initial state (default ``|0...0>``).

    The circuit's global phase is applied to the result.

    Raises:
        SimulationError: If the initial state's register mismatches.
    """
    if initial is None:
        initial = StateVector.zero_state(circuit.register)
    elif initial.register != circuit.register:
        raise SimulationError(
            f"initial state on {initial.dims} does not match circuit "
            f"on {circuit.dims}"
        )
    state = initial
    for gate in circuit.gates:
        state = apply_gate(state, gate)
    if circuit.global_phase:
        state = StateVector(
            state.amplitudes * cmath.exp(1j * circuit.global_phase),
            state.register,
        )
    return state
