"""Dense statevector simulation of mixed-dimensional qudit circuits.

Gates are applied by reshaping the amplitude vector into one tensor
axis per qudit, slicing out the control-satisfying subspace, and
contracting the target axis with the gate's local matrix.  Cost is
``O(prod(dims) * d_target)`` per gate.

Two execution paths are provided:

* :func:`simulate` / :func:`apply_gate` — the immutable API.  Inputs
  are never mutated; :func:`simulate` allocates one private working
  buffer for the whole circuit and delegates to the in-place kernel,
  so cost per gate is one subspace-sized temporary instead of the
  seed's two full-state copies (``tensor.copy()`` plus the
  :class:`StateVector` constructor's validating copy).
* :func:`apply_gate_inplace` / :func:`simulate_inplace` — the
  zero-copy kernel.  The caller owns the buffer; gate matrices are
  memoised per ``(gate identity, dimension)`` in a
  :class:`GateMatrixCache` so parameterised rotations are built once
  per circuit, not once per application.
* :func:`simulate_reference` — the seed's per-gate-copy loop, kept as
  the executable baseline the benchmark-trajectory harness
  (``benchmarks/bench_hotpaths.py``) and the equivalence tests measure
  against.
"""

from __future__ import annotations

import cmath
import threading
from collections import OrderedDict

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate
from repro.exceptions import SimulationError
from repro.states.statevector import StateVector

__all__ = [
    "GateMatrixCache",
    "apply_gate",
    "apply_gate_inplace",
    "simulate",
    "simulate_inplace",
    "simulate_reference",
]


class GateMatrixCache:
    """Memo of local gate matrices keyed by gate identity and dimension.

    The key reuses the gate's equality contract (class, parameters —
    controls and target excluded, they do not affect the local
    matrix), so two equal-parameter rotations on different qudits of
    the same dimension share one matrix.  Matrices are marked
    read-only before being handed out; the simulation kernels never
    write to them.

    The memo is a bounded LRU: one cache instance is shared across
    engine batches in long-running ``serve`` processes (see
    :func:`repro.simulator.fused_sim.shared_matrix_cache`), so without
    a cap an adversarial stream of distinct rotation angles would grow
    it without limit.  The generous default never evicts in one-shot
    use.  Thread-safe — concurrent batches share one instance.

    Args:
        maxsize: Entry cap; least-recently-used matrices are evicted
            past it.
    """

    __slots__ = ("_matrices", "_maxsize", "_lock")

    #: Default entry cap — generous (a few thousand distinct local
    #: matrices per verified circuit is typical; the largest bench
    #: scenario needs well under half of this).
    DEFAULT_MAXSIZE = 16384

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise SimulationError(
                f"maxsize must be >= 1, got {maxsize}"
            )
        self._matrices: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._maxsize = maxsize
        self._lock = threading.Lock()

    def matrix(self, gate: Gate, dimension: int) -> np.ndarray:
        """Return (and memoise) ``gate.matrix(dimension)``."""
        key = (gate.__class__, gate._parameters(), dimension)
        with self._lock:
            matrix = self._matrices.get(key)
            if matrix is not None:
                self._matrices.move_to_end(key)
                return matrix
        matrix = np.asarray(gate.matrix(dimension), dtype=np.complex128)
        matrix.setflags(write=False)
        with self._lock:
            self._matrices[key] = matrix
            self._matrices.move_to_end(key)
            while len(self._matrices) > self._maxsize:
                self._matrices.popitem(last=False)
        return matrix

    @property
    def maxsize(self) -> int:
        """The entry cap of this cache."""
        return self._maxsize

    def clear(self) -> None:
        """Drop every memoised matrix."""
        with self._lock:
            self._matrices.clear()

    def __len__(self) -> int:
        return len(self._matrices)


def apply_gate_inplace(
    tensor: np.ndarray,
    gate: Gate,
    matrix: np.ndarray | None = None,
) -> None:
    """Apply one gate to an amplitude tensor, writing in place.

    Args:
        tensor: Amplitudes reshaped to one axis per qudit (the result
            of :meth:`StateVector.as_tensor` on a writable buffer).
            Mutated in place; the only allocation is the transformed
            subspace.
        gate: Gate to apply; the caller is responsible for having
            validated it against the register (as
            :func:`simulate_inplace` does once per circuit).
        matrix: The gate's local matrix, if the caller already holds
            it (e.g. from a :class:`GateMatrixCache`).
    """
    if matrix is None:
        matrix = gate.matrix(tensor.shape[gate.target])
    index: list[object] = [slice(None)] * tensor.ndim
    axis = gate.target
    for control in gate.controls:
        index[control.qudit] = control.level
        # Integer indices collapse control axes, shifting the target
        # axis left by the number of controls preceding it.
        if control.qudit < gate.target:
            axis -= 1
    subspace = tensor[tuple(index)]
    moved = (
        subspace if axis == 0 else np.moveaxis(subspace, axis, 0)
    )
    dimension = moved.shape[0]
    # reshape copies when ``moved`` is a non-contiguous view; the copy
    # is subspace-sized, and the matmul runs straight into BLAS
    # without np.tensordot's axis-normalisation overhead.
    moved[...] = (
        matrix @ moved.reshape(dimension, -1)
    ).reshape(moved.shape)


def simulate_inplace(
    circuit: Circuit,
    amplitudes: np.ndarray,
    matrix_cache: GateMatrixCache | None = None,
) -> np.ndarray:
    """Run a circuit on a caller-owned amplitude buffer, in place.

    Args:
        circuit: The circuit to execute (its global phase is applied).
        amplitudes: Writable, C-contiguous complex128 vector of size
            ``circuit.register.size``; mutated to the output state.
        matrix_cache: Optional shared gate-matrix memo; pass one cache
            across calls to reuse matrices between circuits.

    Returns:
        The same ``amplitudes`` array, for chaining.

    Raises:
        SimulationError: If the buffer shape does not match the
            register.
    """
    dims = circuit.dims
    if amplitudes.shape != (circuit.register.size,):
        raise SimulationError(
            f"buffer of shape {amplitudes.shape} cannot hold a state "
            f"over dims {dims}"
        )
    if matrix_cache is None:
        matrix_cache = GateMatrixCache()
    # One per-circuit validation pass instead of one validate() per
    # gate per call: Circuit.append validated every gate against this
    # register on entry, so the memoised pass is free for circuits
    # built through the public API and re-validates only when the
    # gate list was manipulated behind the container's back.
    circuit.ensure_validated()
    tensor = amplitudes.reshape(dims)
    for gate in circuit.gates:
        apply_gate_inplace(
            tensor, gate, matrix_cache.matrix(gate, dims[gate.target])
        )
    if circuit.global_phase:
        amplitudes *= cmath.exp(1j * circuit.global_phase)
    return amplitudes


def apply_gate(state: StateVector, gate: Gate) -> StateVector:
    """Apply one (possibly multi-controlled) gate to a state.

    Args:
        state: Input state.
        gate: Gate to apply; validated against the state's register.

    Returns:
        The output state (a new object; inputs are never mutated).
    """
    gate.validate(state.dims)
    tensor = state.as_tensor().copy()
    apply_gate_inplace(tensor, gate)
    return StateVector(tensor.reshape(-1), state.register)


def simulate(
    circuit: Circuit,
    initial: StateVector | None = None,
    *,
    fused: bool | None = None,
) -> StateVector:
    """Run a circuit on an initial state (default ``|0...0>``).

    The circuit's global phase is applied to the result.  The
    immutable contract is kept by running an in-place kernel on one
    private copy of the initial amplitudes.

    Args:
        circuit: The circuit to execute.
        initial: Input state; ``|0...0>`` when ``None``.
        fused: Execute through the fused, level-batched kernel of
            :mod:`repro.simulator.fused_sim` (identical results within
            rounding; non-fusable circuits fall back automatically).
            ``None`` follows the process default
            (:func:`~repro.simulator.fused_sim.default_fused_verify`,
            i.e. fused unless ``REPRO_FUSED_VERIFY=0``); pass
            ``False`` to force the per-gate kernel, whose results are
            bit-for-bit those of :func:`simulate_inplace`.

    Raises:
        SimulationError: If the initial state's register mismatches.
    """
    # Local import: fused_sim imports this module for GateMatrixCache.
    from repro.simulator import fused_sim

    if initial is None:
        buffer = np.zeros(circuit.register.size, dtype=np.complex128)
        buffer[0] = 1.0
    elif initial.register != circuit.register:
        raise SimulationError(
            f"initial state on {initial.dims} does not match circuit "
            f"on {circuit.dims}"
        )
    else:
        buffer = np.array(
            initial.amplitudes, dtype=np.complex128, copy=True
        )
    if fused is None:
        fused = fused_sim.default_fused_verify()
    if not (fused and fused_sim.run_fused_inplace(circuit, buffer)):
        simulate_inplace(circuit, buffer)
    return StateVector(buffer, circuit.register)


def simulate_reference(
    circuit: Circuit,
    initial: StateVector | None = None,
) -> StateVector:
    """Seed baseline of :func:`simulate`: two full copies per gate.

    Chains :func:`apply_gate`, allocating a fresh
    :class:`StateVector` after every gate exactly like the seed
    implementation did.  Retained for the benchmark-trajectory
    harness and the in-place equivalence tests; prefer
    :func:`simulate` everywhere else.
    """
    if initial is None:
        initial = StateVector.zero_state(circuit.register)
    elif initial.register != circuit.register:
        raise SimulationError(
            f"initial state on {initial.dims} does not match circuit "
            f"on {circuit.dims}"
        )
    state = initial
    for gate in circuit.gates:
        state = apply_gate(state, gate)
    if circuit.global_phase:
        state = StateVector(
            state.amplitudes * cmath.exp(1j * circuit.global_phase),
            state.register,
        )
    return state
