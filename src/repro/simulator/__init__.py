"""Simulators for mixed-dimensional qudit circuits.

Three independent execution paths are provided:

* :mod:`repro.simulator.statevector_sim` — dense numpy simulation,
  the reference implementation used for verification,
* :mod:`repro.simulator.fused_sim` — the fused, level-batched
  compilation of the same semantics: runs of gates sharing one
  ``(target, controls)`` pair fold into one local matrix, and
  disjoint-subspace segments apply as a single batched ``matmul``
  (the default verification kernel; see ``docs/performance.md``), and
* :mod:`repro.simulator.dd_sim` — simulation directly on decision
  diagrams (in the spirit of [Mato/Hillmich/Wille, QCE 2023], the
  paper's reference [12]), exercising the DD arithmetic layer.

Having all three lets the test suite cross-validate every gate type.
"""

from repro.simulator.dd_sim import apply_gate_dd, simulate_dd
from repro.simulator.fused_sim import (
    FusionPlan,
    FusionPlanCache,
    compile_plan,
    default_fused_verify,
    execute_plan,
    run_fused_inplace,
    shared_matrix_cache,
    shared_plan_cache,
    simulate_fused,
)
from repro.simulator.statevector_sim import (
    GateMatrixCache,
    apply_gate,
    apply_gate_inplace,
    simulate,
    simulate_inplace,
    simulate_reference,
)
from repro.simulator.unitary_builder import circuit_unitary, gate_unitary

__all__ = [
    "FusionPlan",
    "FusionPlanCache",
    "GateMatrixCache",
    "apply_gate",
    "apply_gate_dd",
    "apply_gate_inplace",
    "circuit_unitary",
    "compile_plan",
    "default_fused_verify",
    "execute_plan",
    "gate_unitary",
    "run_fused_inplace",
    "shared_matrix_cache",
    "shared_plan_cache",
    "simulate",
    "simulate_dd",
    "simulate_fused",
    "simulate_inplace",
    "simulate_reference",
]
