"""Simulators for mixed-dimensional qudit circuits.

Two independent back-ends are provided:

* :mod:`repro.simulator.statevector_sim` — dense numpy simulation,
  the reference implementation used for verification, and
* :mod:`repro.simulator.dd_sim` — simulation directly on decision
  diagrams (in the spirit of [Mato/Hillmich/Wille, QCE 2023], the
  paper's reference [12]), exercising the DD arithmetic layer.

Having both lets the test suite cross-validate every gate type.
"""

from repro.simulator.dd_sim import apply_gate_dd, simulate_dd
from repro.simulator.statevector_sim import (
    GateMatrixCache,
    apply_gate,
    apply_gate_inplace,
    simulate,
    simulate_inplace,
    simulate_reference,
)
from repro.simulator.unitary_builder import circuit_unitary, gate_unitary

__all__ = [
    "GateMatrixCache",
    "apply_gate",
    "apply_gate_dd",
    "apply_gate_inplace",
    "circuit_unitary",
    "gate_unitary",
    "simulate",
    "simulate_dd",
    "simulate_inplace",
    "simulate_reference",
]
