"""Explicit unitary matrices of gates and circuits.

Intended for verification on small registers: the full matrix of a
multi-controlled gate makes equivalence checks against transpiled or
decomposed circuits straightforward.  Cost is ``O(N^2)`` memory for an
``N``-dimensional composite space; callers should keep ``N`` modest.
"""

from __future__ import annotations

import cmath

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate
from repro.exceptions import SimulationError
from repro.registers.register import RegisterLike, as_register

__all__ = ["gate_unitary", "circuit_unitary"]

#: Refuse to densify composite spaces larger than this.
MAX_DENSE_DIMENSION = 4096


def gate_unitary(gate: Gate, register: RegisterLike) -> np.ndarray:
    """Return the full ``N x N`` unitary of a controlled gate.

    Raises:
        SimulationError: If the composite space exceeds
            :data:`MAX_DENSE_DIMENSION`.
    """
    register = as_register(register)
    if register.size > MAX_DENSE_DIMENSION:
        raise SimulationError(
            f"refusing to densify a {register.size}-dimensional space"
        )
    gate.validate(register.dims)
    local = gate.matrix(register.dims[gate.target])
    result = np.zeros(
        (register.size, register.size), dtype=np.complex128
    )
    for column in range(register.size):
        digits = register.digits(column)
        satisfied = all(
            digits[control.qudit] == control.level
            for control in gate.controls
        )
        if not satisfied:
            result[column, column] = 1.0
            continue
        source_level = digits[gate.target]
        new_digits = list(digits)
        for target_level in range(register.dims[gate.target]):
            amplitude = local[target_level, source_level]
            if amplitude == 0:
                continue
            new_digits[gate.target] = target_level
            result[register.index(new_digits), column] = amplitude
    return result


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Return the full unitary implemented by a circuit.

    Includes the circuit's global phase.

    Raises:
        SimulationError: If the composite space exceeds
            :data:`MAX_DENSE_DIMENSION`.
    """
    register = circuit.register
    if register.size > MAX_DENSE_DIMENSION:
        raise SimulationError(
            f"refusing to densify a {register.size}-dimensional space"
        )
    result = np.eye(register.size, dtype=np.complex128)
    for gate in circuit.gates:
        result = gate_unitary(gate, register) @ result
    if circuit.global_phase:
        result = result * cmath.exp(1j * circuit.global_phase)
    return result
