"""Circuit simulation directly on decision diagrams.

Gates are applied to the DD by structural recursion: above the target
level the walk descends (restricting to the controlled branch on
control qudits); at the target level the successor edges are mixed by
the gate's local matrix using DD linear combinations.  Controls *below*
the target are handled by splitting each successor into its projection
onto the control-satisfying subspace (transformed) and the remainder
(passed through), so arbitrary control placements are supported.

This mirrors the mixed-dimensional DD simulation of the paper's
reference [12] and doubles as an independent verification back-end for
the synthesis results.
"""

from __future__ import annotations

import cmath

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate
from repro.dd.arithmetic import linear_combination, project
from repro.dd.builder import build_dd, normalize_edges
from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import Edge
from repro.dd.node import DDNode
from repro.exceptions import SimulationError
from repro.states.statevector import StateVector

__all__ = ["apply_gate_dd", "simulate_dd"]


def apply_gate_dd(dd: DecisionDiagram, gate: Gate) -> DecisionDiagram:
    """Apply one gate to a decision diagram.

    Args:
        dd: Input diagram (canonical, any norm).
        gate: Gate to apply, validated against the diagram's register.

    Returns:
        The output diagram over the same register and unique table.
    """
    dims = dd.dims
    gate.validate(dims)
    table = dd.unique_table
    local = gate.matrix(dims[gate.target])
    target = gate.target
    above = {
        control.qudit: control.level
        for control in gate.controls
        if control.qudit < target
    }
    below = [
        control
        for control in gate.controls
        if control.qudit > target
    ]
    cache: dict[int, Edge] = {}

    def satisfy_below(edge: Edge) -> Edge:
        """Project ``edge`` onto the below-target control subspace."""
        result = edge
        for control in below:
            result = project(
                result, control.qudit, control.level, table,
                current_level=target + 1,
            )
            if result.is_zero:
                return Edge.zero()
        return result

    def transform(node: DDNode) -> Edge:
        """Return the gate image of ``node``'s (unit) sub-state."""
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        level = node.level
        if level == target:
            children: list[Edge] = []
            if below:
                passing = [
                    satisfy_below(node.successor(digit))
                    for digit in range(node.dimension)
                ]
                failing = [
                    linear_combination(
                        [(1.0, node.successor(digit)),
                         (-1.0, passing[digit])],
                        table,
                    )
                    for digit in range(node.dimension)
                ]
                for row in range(node.dimension):
                    terms = [(1.0 + 0.0j, failing[row])]
                    terms.extend(
                        (complex(local[row, column]), passing[column])
                        for column in range(node.dimension)
                    )
                    children.append(linear_combination(terms, table))
            else:
                for row in range(node.dimension):
                    terms = [
                        (complex(local[row, column]),
                         node.successor(column))
                        for column in range(node.dimension)
                    ]
                    children.append(linear_combination(terms, table))
            edge = normalize_edges(children, table, level)
        else:
            controlled_level = above.get(level)
            children = []
            for digit in range(node.dimension):
                child = node.successor(digit)
                if child.is_zero:
                    children.append(Edge.zero())
                elif controlled_level is not None and digit != controlled_level:
                    children.append(child)
                elif child.node.is_terminal:
                    # The target lies below, but this branch carries a
                    # bare amplitude -- impossible for consistent DDs.
                    raise SimulationError(
                        "diagram terminates above the gate target"
                    )
                else:
                    children.append(
                        transform(child.node).scaled(child.weight)
                    )
            edge = normalize_edges(children, table, level)
        cache[id(node)] = edge
        return edge

    if dd.root.is_zero:
        return dd
    new_root = transform(dd.root.node).scaled(dd.root.weight)
    return DecisionDiagram(new_root, dd.register, table)


def simulate_dd(
    circuit: Circuit,
    initial: DecisionDiagram | None = None,
) -> DecisionDiagram:
    """Run a circuit on a decision diagram (default ``|0...0>``).

    The circuit's global phase is folded into the root edge weight.

    Raises:
        SimulationError: If the initial diagram's register mismatches.
    """
    if initial is None:
        initial = build_dd(StateVector.zero_state(circuit.register))
    elif initial.register != circuit.register:
        raise SimulationError(
            f"initial diagram on {initial.dims} does not match circuit "
            f"on {circuit.dims}"
        )
    dd = initial
    for gate in circuit.gates:
        dd = apply_gate_dd(dd, gate)
    if circuit.global_phase:
        phase = cmath.exp(1j * circuit.global_phase)
        dd = DecisionDiagram(
            Edge(dd.root.weight * phase, dd.root.node),
            dd.register,
            dd.unique_table,
        )
    return dd
