"""Fused, level-batched circuit execution for verification.

The per-gate kernel (:func:`repro.simulator.statevector_sim.simulate_inplace`)
pays one Python iteration — slice, moveaxis, matmul — per gate.  The
circuits this library verifies are synthesised from decision diagrams,
so their gates are highly structured: every DD node contributes a run
of ``d - 1`` Givens rotations plus one phase rotation sharing a single
``(target, controls)`` pair, and sibling nodes at one level pin the
same control qudits to *different* levels, i.e. they address disjoint
subspaces of the state.  This module compiles that structure away in
two stages:

1. **Fuse** — consecutive gates with identical ``(target, controls)``
   fold into one ``d x d`` local matrix (a :class:`FusedSegment`),
   collapsing each node ladder into a single application.
2. **Batch** — segments whose control patterns are pairwise disjoint
   (they conflict on at least one control qudit) commute, so a sound
   list scheduler regroups them: segments sharing a
   ``(target, control-qudit-set)`` key and distinct level patterns
   land in one :class:`BatchedGroup`, executed as a single batched
   ``matmul`` over the gathered subspace slices instead of one Python
   iteration per DD node.

The result is a :class:`FusionPlan` — a circuit-independent-of-state
artefact that can be cached (:class:`FusionPlanCache`) and replayed
against many buffers.  Execution is written against the NumPy API
surface through the :class:`~repro.dd.array_backend.ArrayBackend`
seam, so a CuPy backend runs the same plan on device.

Scheduling is *conservative*: two segments are reordered only when
their control patterns provably address disjoint subspaces.  Any
circuit therefore executes correctly — an arbitrary gate soup simply
degenerates to one group per segment, and circuits containing objects
outside the :class:`~repro.circuit.gate.Gate` contract are rejected at
compile time so callers can fall back to the per-gate kernel.
"""

from __future__ import annotations

import cmath
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.controls import Control
from repro.circuit.gate import Gate
from repro.dd.array_backend import ArrayBackend, get_array_backend
from repro.exceptions import SimulationError
from repro.simulator.statevector_sim import GateMatrixCache

__all__ = [
    "FUSED_VERIFY_ENV",
    "BatchedGroup",
    "FusedSegment",
    "FusionPlan",
    "FusionPlanCache",
    "compile_plan",
    "default_fused_verify",
    "execute_plan",
    "run_fused_inplace",
    "shared_matrix_cache",
    "shared_plan_cache",
    "simulate_fused",
]

#: Environment variable gating the fused verification default;
#: ``0`` / ``false`` / ``no`` / ``off`` force the per-gate kernel
#: everywhere a caller does not pick explicitly (CI runs the tier-1
#: suite once this way so the fallback path stays green).
FUSED_VERIFY_ENV = "REPRO_FUSED_VERIFY"

_FALSE_VALUES = frozenset({"0", "false", "no", "off"})

#: The scheduler walks at most this many groups backwards looking for
#: a batch to join.  Synthesised circuits need a walk no deeper than
#: the register width (the groups behind a segment are the already
#: merged deeper-level batches); the cap keeps pathological gate soups
#: from turning compilation quadratic.
_MAX_SCHEDULING_SCAN = 96


def default_fused_verify() -> bool:
    """Whether fused execution is the default for this process.

    Reads :data:`FUSED_VERIFY_ENV`; unset or empty means enabled.
    """
    value = os.environ.get(FUSED_VERIFY_ENV, "").strip().lower()
    return value not in _FALSE_VALUES if value else True


# ----------------------------------------------------------------------
# Plan data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedSegment:
    """A maximal run of gates sharing one ``(target, controls)`` pair.

    Attributes:
        target: Target qudit of every fused gate.
        controls: The shared control conditions (sorted by qudit).
        matrix: Product of the run's local matrices in application
            order (``m_k @ ... @ m_1``).
        gate_count: Number of source gates folded into this segment.
    """

    target: int
    controls: tuple[Control, ...]
    matrix: np.ndarray
    gate_count: int


@dataclass(frozen=True)
class BatchedGroup:
    """Execution form of one batch of disjoint-subspace segments.

    The amplitude tensor is permuted so the control qudits lead and
    the target follows; each member then owns one row of the
    ``(control_space, d, rest)`` block, selected by its flattened
    control assignment.  One batched ``matmul`` applies every member.

    Attributes:
        target: Target qudit shared by all members.
        control_qudits: The pinned qudits (sorted), identical across
            members; the members' level assignments are pairwise
            distinct, which is what makes their subspaces disjoint.
        perm / inverse_perm: Axis permutation to/from the grouped
            layout ``control_qudits + (target,) + rest``.
        transposed_shape: Tensor shape after ``perm``.
        block_shape: ``(control_space, d, rest)`` working shape.
        indices: Flattened control assignment of each member,
            shape ``(k,)``.
        matrices: Stacked member matrices, shape ``(k, d, d)``.
        contiguous: True when ``perm`` is the identity, i.e. the
            working block is a view of the caller's buffer and the
            write-back copy can be skipped.
        gate_count: Source gates covered by this group.
    """

    target: int
    control_qudits: tuple[int, ...]
    perm: tuple[int, ...]
    inverse_perm: tuple[int, ...]
    transposed_shape: tuple[int, ...]
    block_shape: tuple[int, int, int]
    indices: np.ndarray
    matrices: np.ndarray
    contiguous: bool
    gate_count: int

    @property
    def num_segments(self) -> int:
        """Number of fused segments batched into this group."""
        return int(self.indices.shape[0])


@dataclass(frozen=True)
class FusionPlan:
    """A compiled circuit: batched groups plus the global phase.

    Attributes:
        dims: Register dimensions the plan was compiled for.
        size: Total amplitude count (``prod(dims)``).
        global_phase: The circuit's global phase at compile time.
        groups: The batched groups in execution order.
        num_gates: Source gates covered by the plan.
        num_segments: Fused segments before batching.
    """

    dims: tuple[int, ...]
    size: int
    global_phase: float
    groups: tuple[BatchedGroup, ...]
    num_gates: int
    num_segments: int

    @property
    def num_groups(self) -> int:
        """Number of batched applications one execution performs."""
        return len(self.groups)


# ----------------------------------------------------------------------
# Stage 1: fuse consecutive same-pattern gates
# ----------------------------------------------------------------------
def _fuse_segments(
    circuit: Circuit, matrix_cache: GateMatrixCache
) -> list[FusedSegment]:
    dims = circuit.dims
    segments: list[FusedSegment] = []
    target = -1
    controls: tuple[Control, ...] = ()
    matrix: np.ndarray | None = None
    count = 0
    for gate in circuit.gates:
        if not isinstance(gate, Gate):
            raise SimulationError(
                f"cannot fuse {gate!r}: not a single-target Gate"
            )
        dimension = dims[gate.target]
        local = matrix_cache.matrix(gate, dimension)
        if local.shape != (dimension, dimension):
            raise SimulationError(
                f"cannot fuse {gate!r}: local matrix of shape "
                f"{local.shape} does not act on dimension {dimension}"
            )
        if (
            matrix is not None
            and gate.target == target
            and gate.controls == controls
        ):
            matrix = local @ matrix
            count += 1
            continue
        if matrix is not None:
            segments.append(
                FusedSegment(target, controls, matrix, count)
            )
        target, controls, matrix, count = (
            gate.target, gate.controls, local, 1
        )
    if matrix is not None:
        segments.append(FusedSegment(target, controls, matrix, count))
    return segments


# ----------------------------------------------------------------------
# Stage 2: sound list scheduling into disjoint-subspace batches
# ----------------------------------------------------------------------
class _GroupBuilder:
    """One forming batch: same pattern key, disjoint level patterns."""

    __slots__ = (
        "key", "level_keys", "vectors", "levels", "matrices",
        "gate_count", "_stacked",
    )

    def __init__(self, key: tuple[int, tuple[int, ...]]):
        self.key = key
        self.level_keys: set[tuple[int, ...]] = set()
        self.vectors: list[np.ndarray] = []
        self.levels: list[tuple[int, ...]] = []
        self.matrices: list[np.ndarray] = []
        self.gate_count = 0
        self._stacked: np.ndarray | None = None

    def add(
        self,
        levels: tuple[int, ...],
        vector: np.ndarray,
        segment: FusedSegment,
    ) -> None:
        self.level_keys.add(levels)
        self.vectors.append(vector)
        self.levels.append(levels)
        self.matrices.append(segment.matrix)
        self.gate_count += segment.gate_count
        self._stacked = None

    def disjoint_from(self, vector: np.ndarray) -> bool:
        """Whether ``vector``'s subspace misses every member's.

        Disjointness requires a conflict — a qudit controlled by both
        patterns at different levels — against *each* member; disjoint
        operators act on disjoint amplitude sets and therefore
        commute, which is what licenses moving a segment past this
        group.
        """
        if self._stacked is None:
            self._stacked = np.vstack(self.vectors)
        stacked = self._stacked
        conflicts = (
            (stacked >= 0) & (vector >= 0) & (stacked != vector)
        )
        return bool(conflicts.any(axis=1).all())


def _schedule(
    segments: list[FusedSegment], num_qudits: int
) -> list[_GroupBuilder]:
    groups: list[_GroupBuilder] = []
    for segment in segments:
        qudits = tuple(c.qudit for c in segment.controls)
        levels = tuple(c.level for c in segment.controls)
        vector = np.full(num_qudits, -1, dtype=np.int16)
        if qudits:
            vector[list(qudits)] = levels
        key = (segment.target, qudits)
        placed: _GroupBuilder | None = None
        scanned = 0
        for group in reversed(groups):
            if group.key == key:
                if levels not in group.level_keys:
                    # Same qudit set, new level pattern: disjoint
                    # from every member by construction, and we
                    # proved commutation with everything in between.
                    placed = group
                break
            scanned += 1
            if scanned > _MAX_SCHEDULING_SCAN or not group.disjoint_from(
                vector
            ):
                break
        if placed is None:
            placed = _GroupBuilder(key)
            groups.append(placed)
        placed.add(levels, vector, segment)
    return groups


# ----------------------------------------------------------------------
# Stage 3: lower builders to execution form
# ----------------------------------------------------------------------
def _lower(
    builders: list[_GroupBuilder],
    dims: tuple[int, ...],
) -> tuple[BatchedGroup, ...]:
    num_qudits = len(dims)
    lowered = []
    for builder in builders:
        target, qudits = builder.key
        dimension = dims[target]
        rest = tuple(
            q for q in range(num_qudits)
            if q != target and q not in qudits
        )
        perm = qudits + (target,) + rest
        inverse_perm = tuple(int(p) for p in np.argsort(perm))
        transposed_shape = tuple(dims[p] for p in perm)
        control_dims = tuple(dims[q] for q in qudits)
        control_space = int(np.prod(control_dims, dtype=np.int64))
        rest_size = int(np.prod([dims[q] for q in rest] or [1]))
        if qudits:
            indices = np.asarray(
                [
                    np.ravel_multi_index(levels, control_dims)
                    for levels in builder.levels
                ],
                dtype=np.intp,
            )
        else:
            indices = np.zeros(len(builder.levels), dtype=np.intp)
        matrices = np.stack(builder.matrices)
        lowered.append(
            BatchedGroup(
                target=target,
                control_qudits=qudits,
                perm=perm,
                inverse_perm=inverse_perm,
                transposed_shape=transposed_shape,
                block_shape=(control_space, dimension, rest_size),
                indices=indices,
                matrices=matrices,
                contiguous=perm == tuple(range(num_qudits)),
                gate_count=builder.gate_count,
            )
        )
    return tuple(lowered)


def compile_plan(
    circuit: Circuit,
    matrix_cache: GateMatrixCache | None = None,
) -> FusionPlan:
    """Compile a circuit into a replayable :class:`FusionPlan`.

    Args:
        circuit: The circuit to compile.  Gates were validated against
            the register on :meth:`Circuit.append`, so compilation
            performs no per-gate re-validation.
        matrix_cache: Shared local-matrix memo; the process-wide
            :func:`shared_matrix_cache` when ``None``.

    Raises:
        SimulationError: If the circuit contains an object outside the
            single-target :class:`Gate` contract (callers fall back to
            the per-gate kernel).
    """
    if matrix_cache is None:
        matrix_cache = shared_matrix_cache()
    segments = _fuse_segments(circuit, matrix_cache)
    builders = _schedule(segments, circuit.num_qudits)
    return FusionPlan(
        dims=circuit.dims,
        size=circuit.register.size,
        global_phase=circuit.global_phase,
        groups=_lower(builders, circuit.dims),
        num_gates=circuit.num_operations,
        num_segments=len(segments),
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_plan(
    plan: FusionPlan,
    amplitudes,
    backend: ArrayBackend | str | None = None,
) -> None:
    """Replay a plan against a writable amplitude buffer, in place.

    Args:
        plan: The compiled circuit.
        amplitudes: Writable complex vector of ``plan.size`` elements,
            owned by the caller; mutated to the output state.  With a
            non-NumPy backend this is the backend's array type.
        backend: The :class:`~repro.dd.array_backend.ArrayBackend`
            whose namespace executes the plan (NumPy when ``None``).

    Raises:
        SimulationError: If the buffer size does not match the plan.
    """
    resolved = get_array_backend(backend)
    if amplitudes.shape != (plan.size,):
        raise SimulationError(
            f"buffer of shape {amplitudes.shape} cannot hold a state "
            f"over dims {plan.dims}"
        )
    tensor = amplitudes.reshape(plan.dims)
    for group in plan.groups:
        indices = resolved.asarray(group.indices)
        matrices = resolved.asarray(group.matrices)
        if group.contiguous:
            # The grouped layout is the buffer's own layout: the
            # reshape is a view and writes land in place directly.
            work = tensor.reshape(group.block_shape)
            work[indices] = matrices @ work[indices]
            continue
        view = tensor.transpose(group.perm)
        work = view.reshape(group.block_shape)
        work[indices] = matrices @ work[indices]
        view[...] = work.reshape(group.transposed_shape)
    if plan.global_phase:
        amplitudes *= cmath.exp(1j * plan.global_phase)


# ----------------------------------------------------------------------
# Plan cache and process-wide shared instances
# ----------------------------------------------------------------------
class FusionPlanCache:
    """LRU memo of :class:`FusionPlan` objects keyed by circuit.

    Plans are keyed by circuit *object identity* (circuits compare by
    value but are mutable and unhashable); an entry pins its circuit,
    so a recycled ``id`` can never alias, and is revalidated against
    the circuit's operation count and global phase — appending gates
    or changing the phase recompiles on the next request.  A bounded
    LRU keeps long-running serve processes from growing without limit.
    """

    DEFAULT_MAXSIZE = 256

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._plans: OrderedDict[
            int, tuple[Circuit, int, float, FusionPlan]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def plan(
        self,
        circuit: Circuit,
        matrix_cache: GateMatrixCache | None = None,
    ) -> FusionPlan:
        """Return (and memoise) the plan for ``circuit``."""
        key = id(circuit)
        with self._lock:
            entry = self._plans.get(key)
            if (
                entry is not None
                and entry[0] is circuit
                and entry[1] == circuit.num_operations
                and entry[2] == circuit.global_phase
            ):
                self._plans.move_to_end(key)
                self._hits += 1
                return entry[3]
        plan = compile_plan(circuit, matrix_cache)
        with self._lock:
            self._misses += 1
            self._plans[key] = (
                circuit,
                circuit.num_operations,
                circuit.global_phase,
                plan,
            )
            self._plans.move_to_end(key)
            while len(self._plans) > self._maxsize:
                self._plans.popitem(last=False)
        return plan

    @property
    def hits(self) -> int:
        """Lookups served from the memo."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that compiled a fresh plan."""
        return self._misses

    def clear(self) -> None:
        """Drop every cached plan."""
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)


_SHARED_PLAN_CACHE = FusionPlanCache()
_SHARED_MATRIX_CACHE = GateMatrixCache()


def shared_plan_cache() -> FusionPlanCache:
    """The process-wide plan cache verification shares by default.

    One cache across engine batches means a circuit synthesised once
    and verified many times (cache replays, repeated benchmarks,
    serving duplicates) compiles exactly once.
    """
    return _SHARED_PLAN_CACHE


def shared_matrix_cache() -> GateMatrixCache:
    """The process-wide gate-matrix memo paired with the plan cache.

    Bounded by :attr:`GateMatrixCache.DEFAULT_MAXSIZE`, so long-running
    ``serve`` processes cannot grow it without limit.
    """
    return _SHARED_MATRIX_CACHE


# ----------------------------------------------------------------------
# Front doors
# ----------------------------------------------------------------------
def run_fused_inplace(
    circuit: Circuit,
    amplitudes,
    plan_cache: FusionPlanCache | None = None,
    matrix_cache: GateMatrixCache | None = None,
    backend: ArrayBackend | str | None = None,
) -> bool:
    """Execute ``circuit`` on a caller-owned buffer via a cached plan.

    Returns ``True`` on success and ``False`` when the circuit is not
    fusable — the caller then falls back to the per-gate kernel with
    the buffer untouched (compilation happens before any write).
    """
    if plan_cache is None:
        plan_cache = _SHARED_PLAN_CACHE
    try:
        plan = plan_cache.plan(circuit, matrix_cache)
    except SimulationError:
        return False
    execute_plan(plan, amplitudes, backend)
    return True


def simulate_fused(
    circuit: Circuit,
    initial=None,
    plan_cache: FusionPlanCache | None = None,
    matrix_cache: GateMatrixCache | None = None,
):
    """Run a circuit through the fused kernel (default ``|0...0>``).

    The immutable analogue of :func:`run_fused_inplace`: allocates one
    private buffer, compiles (or reuses) the plan, and returns the
    output :class:`~repro.states.statevector.StateVector`.  Falls back
    to the per-gate kernel for non-fusable circuits.

    Raises:
        SimulationError: If the initial state's register mismatches.
    """
    # Local import: statevector_sim is this module's import parent.
    from repro.simulator.statevector_sim import simulate_inplace
    from repro.states.statevector import StateVector

    if initial is None:
        buffer = np.zeros(circuit.register.size, dtype=np.complex128)
        buffer[0] = 1.0
    elif initial.register != circuit.register:
        raise SimulationError(
            f"initial state on {initial.dims} does not match circuit "
            f"on {circuit.dims}"
        )
    else:
        buffer = np.array(
            initial.amplitudes, dtype=np.complex128, copy=True
        )
    if not run_fused_inplace(
        circuit, buffer, plan_cache, matrix_cache
    ):
        simulate_inplace(circuit, buffer)
    return StateVector(buffer, circuit.register)
