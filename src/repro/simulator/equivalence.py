"""Equivalence checking of qudit circuits.

Used to validate transpilation passes: two circuits are equivalent
when they implement the same unitary, optionally up to a global phase.
Small registers are checked exactly through the dense unitary; larger
ones are probed with random states (a sound Monte-Carlo check: random
complex-Gaussian states distinguish distinct unitaries with
probability 1).  Probe runs go through :func:`simulate`, so they
execute on the fused, level-batched kernel by default (per-gate for
non-fusable circuits or under ``REPRO_FUSED_VERIFY=0``); the
comparison tolerance dwarfs the kernels' rounding difference.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.exceptions import SimulationError
from repro.simulator.statevector_sim import simulate
from repro.simulator.unitary_builder import (
    MAX_DENSE_DIMENSION,
    circuit_unitary,
)
from repro.states.statevector import StateVector

__all__ = ["circuits_equivalent"]

#: Registers up to this size are checked exactly.
_DENSE_LIMIT = 512


def _phase_aligned(matrix: np.ndarray) -> np.ndarray:
    flat = matrix.reshape(-1)
    pivot = flat[np.argmax(np.abs(flat))]
    if abs(pivot) < 1e-14:
        return matrix
    return matrix * (abs(pivot) / pivot)


def circuits_equivalent(
    first: Circuit,
    second: Circuit,
    up_to_global_phase: bool = True,
    tolerance: float = 1e-9,
    probes: int = 4,
    rng: np.random.Generator | int | None = None,
) -> bool:
    """Decide whether two circuits implement the same unitary.

    Args:
        first: First circuit.
        second: Second circuit over the same register.
        up_to_global_phase: Ignore a constant phase between the two.
        tolerance: Numerical tolerance of the comparison.
        probes: Number of random probe states for the Monte-Carlo
            path (used when the register is too large to densify).
        rng: Generator or seed for the probe states.

    Raises:
        SimulationError: If the circuits act on different registers or
            the register exceeds :data:`MAX_DENSE_DIMENSION` even for
            probing (probing has no hard limit, so this only triggers
            through the dense path).
    """
    if first.register != second.register:
        raise SimulationError(
            f"cannot compare circuits over {first.dims} and "
            f"{second.dims}"
        )
    size = first.register.size
    if size <= min(_DENSE_LIMIT, MAX_DENSE_DIMENSION):
        matrix_a = circuit_unitary(first)
        matrix_b = circuit_unitary(second)
        if up_to_global_phase:
            matrix_a = _phase_aligned(matrix_a)
            matrix_b = _phase_aligned(matrix_b)
        return bool(
            np.allclose(matrix_a, matrix_b, atol=tolerance, rtol=0.0)
        )
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    for _ in range(max(1, probes)):
        amplitudes = generator.normal(size=size) + 1j * generator.normal(
            size=size
        )
        probe = StateVector(
            amplitudes / np.linalg.norm(amplitudes), first.dims
        )
        out_a = simulate(first, probe).amplitudes
        out_b = simulate(second, probe).amplitudes
        if up_to_global_phase:
            overlap = np.vdot(out_a, out_b)
            if abs(abs(overlap) - 1.0) > tolerance:
                return False
        elif not np.allclose(out_a, out_b, atol=tolerance, rtol=0.0):
            return False
    return True
