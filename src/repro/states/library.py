"""The benchmark state families of the paper plus common extras.

The four families evaluated in Table 1 of the paper are:

* :func:`ghz_state` — generalized Greenberger-Horne-Zeilinger state
  spanning ``min(dims)`` levels [33],
* :func:`w_state` — the all-level qudit W state in which a single
  excitation occupies *any* non-zero level of any qudit,
* :func:`embedded_w_state` — the qubit W state embedded into qudits,
  using only levels 0 and 1 (after Yeh [27]),
* random states (see :mod:`repro.states.random_states`).

The family definitions were cross-checked against the operation counts
reported in Table 1, which they reproduce exactly (see the
``TABLE1_OPERATIONS`` cases in ``tests/test_dd_metrics.py``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError, StateError
from repro.registers.register import RegisterLike, as_register
from repro.states.statevector import StateVector

__all__ = [
    "basis_state",
    "cyclic_state",
    "dicke_state",
    "embedded_w_state",
    "ghz_state",
    "product_state",
    "uniform_state",
    "w_state",
]


def basis_state(register: RegisterLike, digits: Sequence[int]) -> StateVector:
    """Return the computational basis state ``|digits>``."""
    register = as_register(register)
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    amplitudes[register.index(digits)] = 1.0
    return StateVector(amplitudes, register)


def ghz_state(register: RegisterLike, levels: int | None = None) -> StateVector:
    """Return the mixed-dimensional GHZ state.

    ``(1/sqrt(s)) * sum_{l < s} |l, l, ..., l>`` where ``s`` defaults to
    the smallest qudit dimension in the register (the largest number of
    levels every qudit can reach).  For two qutrits this is the state of
    Example 3 of the paper, ``(|00> + |11> + |22>)/sqrt(3)``.

    Args:
        register: Target register or dimension tuple.
        levels: Number of diagonal levels ``s``; defaults to
            ``min(dims)``.

    Raises:
        DimensionError: If ``levels`` exceeds some qudit's dimension or
            is smaller than 2.
    """
    register = as_register(register)
    span = min(register.dims) if levels is None else levels
    if span < 2:
        raise DimensionError(f"GHZ needs at least 2 levels, got {span}")
    if span > min(register.dims):
        raise DimensionError(
            f"GHZ over {span} levels impossible with dims {register.dims}"
        )
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    weight = 1.0 / math.sqrt(span)
    for level in range(span):
        amplitudes[register.index((level,) * register.num_qudits)] = weight
    return StateVector(amplitudes, register)


def w_state(register: RegisterLike) -> StateVector:
    """Return the all-level qudit W state.

    A uniform superposition of every basis state carrying exactly one
    excitation, where the excitation on qudit ``q`` may sit on any of
    its non-zero levels ``1 .. d_q - 1``:

        ``sum_q sum_{l=1}^{d_q - 1} |0 .. l_q .. 0> / sqrt(sum_q (d_q - 1))``

    For qubit registers this reduces to the ordinary W state [34].
    """
    register = as_register(register)
    terms = sum(dim - 1 for dim in register.dims)
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    weight = 1.0 / math.sqrt(terms)
    for qudit, dim in enumerate(register.dims):
        digits = [0] * register.num_qudits
        for level in range(1, dim):
            digits[qudit] = level
            amplitudes[register.index(digits)] = weight
        digits[qudit] = 0
    return StateVector(amplitudes, register)


def embedded_w_state(register: RegisterLike) -> StateVector:
    """Return the qubit W state embedded into a qudit register.

    Only levels 0 and 1 of each qudit are populated:

        ``sum_q |0 .. 1_q .. 0> / sqrt(n)``

    This is the "Embedded W-State" benchmark of the paper (cf. Yeh,
    scaling W states in the qudit Clifford hierarchy [27]).
    """
    register = as_register(register)
    n = register.num_qudits
    if n < 2:
        raise DimensionError("embedded W state needs at least 2 qudits")
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    weight = 1.0 / math.sqrt(n)
    for qudit in range(n):
        digits = [0] * n
        digits[qudit] = 1
        amplitudes[register.index(digits)] = weight
    return StateVector(amplitudes, register)


def dicke_state(register: RegisterLike, excitations: int) -> StateVector:
    """Return the Dicke state with ``excitations`` level-1 excitations.

    A uniform superposition over all basis states whose digits are 0/1
    and sum to ``excitations``.  ``dicke_state(reg, 1)`` coincides with
    :func:`embedded_w_state`.

    Raises:
        DimensionError: If ``excitations`` is out of ``[0, n]``.
    """
    register = as_register(register)
    n = register.num_qudits
    if not 0 <= excitations <= n:
        raise DimensionError(
            f"excitations must be within [0, {n}], got {excitations}"
        )
    indices = []
    for index in range(register.size):
        digits = register.digits(index)
        if all(d <= 1 for d in digits) and sum(digits) == excitations:
            indices.append(index)
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    weight = 1.0 / math.sqrt(len(indices))
    for index in indices:
        amplitudes[index] = weight
    return StateVector(amplitudes, register)


def cyclic_state(
    register: RegisterLike, digits: Sequence[int]
) -> StateVector:
    """Return the uniform superposition over cyclic shifts of a string.

    ``(1/sqrt(k)) * sum_r |rotate(digits, r)>`` where the sum runs over
    the distinct cyclic rotations of the digit string.  Cyclic states
    are a state class previously targeted by dedicated DD-based
    preparation methods (Mozafari et al., ASP-DAC 2022 — reference
    [24] of the paper); the generic synthesis here handles them with
    no special casing.

    Args:
        register: Target register; must be *uniform* (all dimensions
            equal), otherwise a rotated string may be invalid.
        digits: The seed string, one digit per qudit.

    Raises:
        DimensionError: If the register is mixed-dimensional or the
            string does not fit.
    """
    register = as_register(register)
    if not register.is_uniform():
        raise DimensionError(
            "cyclic states require a uniform register, got dims "
            f"{register.dims}"
        )
    digits = tuple(digits)
    if len(digits) != register.num_qudits:
        raise DimensionError(
            f"expected {register.num_qudits} digits, got {len(digits)}"
        )
    rotations = {
        digits[shift:] + digits[:shift]
        for shift in range(register.num_qudits)
    }
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    weight = 1.0 / math.sqrt(len(rotations))
    for rotation in rotations:
        amplitudes[register.index(rotation)] = weight
    return StateVector(amplitudes, register)


def uniform_state(register: RegisterLike) -> StateVector:
    """Return the uniform superposition over all basis states."""
    register = as_register(register)
    weight = 1.0 / math.sqrt(register.size)
    return StateVector(
        np.full(register.size, weight, dtype=np.complex128), register
    )


def product_state(
    register: RegisterLike, factors: Sequence[Sequence[complex]]
) -> StateVector:
    """Return the tensor product of per-qudit local states.

    Args:
        register: Target register (defines expected factor lengths).
        factors: One local amplitude vector per qudit, most significant
            first; each is normalised individually.

    Raises:
        DimensionError: If the number or lengths of factors mismatch.
        StateError: If some factor is the zero vector.
    """
    register = as_register(register)
    if len(factors) != register.num_qudits:
        raise DimensionError(
            f"expected {register.num_qudits} factors, got {len(factors)}"
        )
    amplitudes = np.array([1.0], dtype=np.complex128)
    for qudit, factor in enumerate(factors):
        local = np.asarray(factor, dtype=np.complex128)
        if local.shape != (register.dims[qudit],):
            raise DimensionError(
                f"factor {qudit} must have length {register.dims[qudit]}, "
                f"got shape {local.shape}"
            )
        norm = np.linalg.norm(local)
        if norm < 1e-14:
            raise StateError(f"factor {qudit} is the zero vector")
        amplitudes = np.kron(amplitudes, local / norm)
    return StateVector(amplitudes, register)
