"""Quantum states over mixed-dimensional qudit registers."""

from repro.states.fidelity import fidelity, overlap
from repro.states.library import (
    basis_state,
    cyclic_state,
    dicke_state,
    embedded_w_state,
    ghz_state,
    product_state,
    uniform_state,
    w_state,
)
from repro.states.random_states import (
    random_state,
    random_sparse_state,
)
from repro.states.statevector import StateVector

__all__ = [
    "StateVector",
    "basis_state",
    "cyclic_state",
    "dicke_state",
    "embedded_w_state",
    "fidelity",
    "ghz_state",
    "overlap",
    "product_state",
    "random_sparse_state",
    "random_state",
    "uniform_state",
    "w_state",
]
