"""Fusing and splitting qudits (register reshaping).

The authors' companion work ("Compression of Qubit Circuits: Mapping
to Mixed-Dimensional Quantum Systems", QSW 2023 — reference [15] of
the paper) maps groups of qubits onto single higher-dimensional
qudits.  State-vector-level support for that mapping is a pair of
inverse reshapes:

* :func:`fuse_qudits` — merge two *adjacent* qudits of dimensions
  ``(a, b)`` into one qudit of dimension ``a * b`` (digit
  ``l = a_digit * b + b_digit``);
* :func:`split_qudit` — the inverse, factoring one qudit into two.

Fusing never changes amplitudes — only the register structure — but it
changes the decision diagram (one level fewer) and therefore the
synthesised circuit: rotations on the fused qudit address the joint
space directly, trading controls for local dimension.  The effect is
quantified in ``benchmarks/bench_fusion.py`` (E13).
"""

from __future__ import annotations

from repro.exceptions import DimensionError
from repro.states.statevector import StateVector

__all__ = ["fuse_qudits", "split_qudit", "fuse_all"]


def fuse_qudits(state: StateVector, position: int) -> StateVector:
    """Merge qudits ``position`` and ``position + 1`` into one.

    The basis correspondence is
    ``|.., a, b, ..> -> |.., a * d_b + b, ..>``; amplitudes are
    unchanged (the flat vector is identical).

    Raises:
        DimensionError: If ``position`` has no right neighbour.
    """
    dims = state.dims
    if not 0 <= position < len(dims) - 1:
        raise DimensionError(
            f"cannot fuse at position {position} of {len(dims)} qudits"
        )
    new_dims = (
        dims[:position]
        + (dims[position] * dims[position + 1],)
        + dims[position + 2:]
    )
    return StateVector(state.amplitudes, new_dims)


def split_qudit(
    state: StateVector, position: int, factors: tuple[int, int]
) -> StateVector:
    """Split qudit ``position`` into two qudits of the given dims.

    Inverse of :func:`fuse_qudits`:
    ``|.., l, ..> -> |.., l // factors[1], l % factors[1], ..>``.

    Raises:
        DimensionError: If the factors do not multiply to the qudit's
            dimension or are smaller than 2.
    """
    dims = state.dims
    if not 0 <= position < len(dims):
        raise DimensionError(
            f"qudit {position} out of range for {len(dims)} qudits"
        )
    a, b = factors
    if a < 2 or b < 2:
        raise DimensionError(
            f"split factors must each be >= 2, got {factors}"
        )
    if a * b != dims[position]:
        raise DimensionError(
            f"factors {factors} do not multiply to dimension "
            f"{dims[position]}"
        )
    new_dims = dims[:position] + (a, b) + dims[position + 1:]
    return StateVector(state.amplitudes, new_dims)


def fuse_all(state: StateVector) -> StateVector:
    """Fuse the entire register into a single qudit.

    The resulting one-qudit state synthesises into a pure rotation
    ladder with no controls at all — the degenerate extreme of the
    compression trade-off.
    """
    result = state
    while result.register.num_qudits > 1:
        result = fuse_qudits(result, 0)
    return result
