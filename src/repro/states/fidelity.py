"""State overlap and fidelity.

The paper's quality metric is the state fidelity
``F = |<psi|phi>|^2`` between the target state and the state produced
by the synthesised circuit (Section 5, "Fidelity" column).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.states.statevector import StateVector

__all__ = ["overlap", "fidelity"]


def overlap(bra: StateVector, ket: StateVector) -> complex:
    """Return the inner product ``<bra|ket>``.

    Raises:
        DimensionError: If the states live on different registers.
    """
    if bra.register != ket.register:
        raise DimensionError(
            f"cannot overlap states on registers {bra.dims} and {ket.dims}"
        )
    return complex(np.vdot(bra.amplitudes, ket.amplitudes))


def fidelity(target: StateVector, candidate: StateVector) -> float:
    """Return ``|<target|candidate>|^2``.

    Both states should be normalised; the value is clipped into
    ``[0, 1]`` to guard against rounding overshoot.
    """
    value = abs(overlap(target, candidate)) ** 2
    return float(min(max(value, 0.0), 1.0))
