"""Random state generation for the Table 1 "Random State" benchmarks.

The paper draws "amplitudes generated from a uniform distribution";
:func:`random_state` supports that convention (`distribution="uniform"`)
as well as Haar-like complex-Gaussian amplitudes and uniform amplitudes
with uniformly random phases, all behind a seeded numpy generator so
benchmark runs are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StateError
from repro.registers.register import RegisterLike, as_register
from repro.states.statevector import StateVector

__all__ = ["random_state", "random_sparse_state"]

_DISTRIBUTIONS = ("uniform", "uniform_phase", "gaussian")


def _resolve_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_state(
    register: RegisterLike,
    rng: np.random.Generator | int | None = None,
    distribution: str = "uniform",
) -> StateVector:
    """Return a normalised random state.

    Args:
        register: Target register or dimension tuple.
        rng: A numpy generator, an integer seed, or ``None``.
        distribution: One of
            ``"uniform"`` — real amplitudes i.i.d. on ``[0, 1)`` (the
            paper's convention),
            ``"uniform_phase"`` — magnitudes on ``[0, 1)`` with i.i.d.
            uniform phases,
            ``"gaussian"`` — complex standard normal entries (Haar-like
            direction).

    Raises:
        StateError: If ``distribution`` is unknown.
    """
    register = as_register(register)
    generator = _resolve_rng(rng)
    if distribution == "uniform":
        amplitudes = generator.random(register.size).astype(np.complex128)
    elif distribution == "uniform_phase":
        magnitudes = generator.random(register.size)
        phases = generator.random(register.size) * 2.0 * np.pi
        amplitudes = magnitudes * np.exp(1j * phases)
    elif distribution == "gaussian":
        amplitudes = generator.normal(
            size=register.size
        ) + 1j * generator.normal(size=register.size)
    else:
        raise StateError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {_DISTRIBUTIONS}"
        )
    norm = np.linalg.norm(amplitudes)
    if norm == 0.0:  # pragma: no cover - probability zero
        amplitudes[0] = 1.0
        norm = 1.0
    return StateVector(amplitudes / norm, register)


def random_sparse_state(
    register: RegisterLike,
    num_terms: int,
    rng: np.random.Generator | int | None = None,
) -> StateVector:
    """Return a random state supported on ``num_terms`` basis states.

    Useful for exercising decision-diagram sharing: sparse states give
    small diagrams with non-trivial structure.

    Raises:
        StateError: If ``num_terms`` is out of ``[1, register.size]``.
    """
    register = as_register(register)
    if not 1 <= num_terms <= register.size:
        raise StateError(
            f"num_terms must be in [1, {register.size}], got {num_terms}"
        )
    generator = _resolve_rng(rng)
    support = generator.choice(register.size, size=num_terms, replace=False)
    amplitudes = np.zeros(register.size, dtype=np.complex128)
    values = generator.normal(size=num_terms) + 1j * generator.normal(
        size=num_terms
    )
    amplitudes[support] = values
    return StateVector(
        amplitudes / np.linalg.norm(amplitudes), register
    )
