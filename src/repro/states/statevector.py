"""Dense state vectors over mixed-dimensional qudit registers.

:class:`StateVector` couples a numpy amplitude array with the
:class:`~repro.registers.QuditRegister` that defines its shape.  It is
the interchange format between the state library, the decision-diagram
builder, and the simulator.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import DimensionError, NormalizationError, StateError
from repro.registers import QuditRegister
from repro.registers.register import RegisterLike, as_register

__all__ = ["StateVector"]

#: Amplitudes below this magnitude are treated as exact zeros when
#: deciding sparsity; the value is far above double rounding noise yet
#: far below any physically meaningful amplitude.
ZERO_CUTOFF = 1e-14


class StateVector:
    """An amplitude vector bound to a qudit register.

    The amplitude of basis state ``|a_0 ... a_{n-1}>`` is stored at the
    flat index ``register.index((a_0, ..., a_{n-1}))``.

    Example:
        >>> import numpy as np
        >>> sv = StateVector(np.array([1, 0, 0, 1]) / np.sqrt(2), (2, 2))
        >>> round(sv.probability((1, 1)), 3)
        0.5
    """

    __slots__ = ("_amplitudes", "_register")

    def __init__(
        self,
        amplitudes: Sequence[complex] | np.ndarray,
        register: RegisterLike,
    ):
        self._register = as_register(register)
        array = np.asarray(amplitudes, dtype=np.complex128)
        if array.ndim != 1:
            raise StateError(
                f"amplitudes must be one-dimensional, got shape {array.shape}"
            )
        if array.shape[0] != self._register.size:
            raise DimensionError(
                f"register of size {self._register.size} cannot hold "
                f"{array.shape[0]} amplitudes"
            )
        if not np.all(np.isfinite(array)):
            raise StateError("amplitudes must be finite")
        self._amplitudes = array.copy()
        self._amplitudes.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, register: RegisterLike) -> "StateVector":
        """Return ``|0...0>`` over the given register."""
        register = as_register(register)
        amplitudes = np.zeros(register.size, dtype=np.complex128)
        amplitudes[0] = 1.0
        return cls(amplitudes, register)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def register(self) -> QuditRegister:
        """The register this state is defined over."""
        return self._register

    @property
    def dims(self) -> tuple[int, ...]:
        """Per-qudit dimensions of the register."""
        return self._register.dims

    @property
    def amplitudes(self) -> np.ndarray:
        """Read-only view of the amplitude array."""
        return self._amplitudes

    @property
    def size(self) -> int:
        """Number of amplitudes."""
        return self._amplitudes.shape[0]

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self._amplitudes))

    def is_normalized(self, tolerance: float = 1e-9) -> bool:
        """Whether the squared norm is within ``tolerance`` of 1."""
        return abs(self.norm() - 1.0) <= tolerance

    def num_nonzero(self, cutoff: float = ZERO_CUTOFF) -> int:
        """Number of amplitudes with magnitude above ``cutoff``."""
        return int(np.count_nonzero(np.abs(self._amplitudes) > cutoff))

    # ------------------------------------------------------------------
    # Amplitude access
    # ------------------------------------------------------------------
    def amplitude(self, basis: Sequence[int] | int) -> complex:
        """Amplitude of a basis state given as digits or flat index."""
        if isinstance(basis, (int, np.integer)):
            index = int(basis)
            if not 0 <= index < self.size:
                raise DimensionError(
                    f"index {index} out of range for size {self.size}"
                )
        else:
            index = self._register.index(basis)
        return complex(self._amplitudes[index])

    def probability(self, basis: Sequence[int] | int) -> float:
        """Measurement probability of a basis state."""
        return abs(self.amplitude(basis)) ** 2

    def nonzero_terms(
        self, cutoff: float = ZERO_CUTOFF
    ) -> Iterator[tuple[tuple[int, ...], complex]]:
        """Yield ``(digits, amplitude)`` for non-negligible amplitudes."""
        for index in np.flatnonzero(np.abs(self._amplitudes) > cutoff):
            yield self._register.digits(int(index)), complex(
                self._amplitudes[index]
            )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "StateVector":
        """Return the unit-norm copy of this state.

        Raises:
            NormalizationError: If the vector is (numerically) zero.
        """
        norm = self.norm()
        if norm <= ZERO_CUTOFF:
            raise NormalizationError("cannot normalise the zero vector")
        return StateVector(self._amplitudes / norm, self._register)

    def tensor(self, other: "StateVector") -> "StateVector":
        """Return the tensor product ``self (x) other``.

        ``self`` supplies the most significant qudits of the result.
        """
        register = QuditRegister(self.dims + other.dims)
        return StateVector(
            np.kron(self._amplitudes, other._amplitudes), register
        )

    def as_tensor(self) -> np.ndarray:
        """Return the amplitudes reshaped to one axis per qudit."""
        return self._amplitudes.reshape(self.dims)

    def global_phase_aligned(self) -> "StateVector":
        """Return a copy whose first non-zero amplitude is real positive.

        Useful for comparing states that may differ by a global phase.
        """
        nonzero = np.flatnonzero(np.abs(self._amplitudes) > ZERO_CUTOFF)
        if nonzero.size == 0:
            return StateVector(self._amplitudes, self._register)
        pivot = self._amplitudes[nonzero[0]]
        phase = pivot / abs(pivot)
        return StateVector(self._amplitudes / phase, self._register)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def sample(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[tuple[int, ...], int]:
        """Sample measurement outcomes in the computational basis.

        Args:
            shots: Number of samples to draw (must be positive).
            rng: Optional numpy random generator for reproducibility.

        Returns:
            A histogram mapping digit tuples to observed counts.

        Raises:
            StateError: If the state is not normalised or shots <= 0.
        """
        if shots <= 0:
            raise StateError(f"shots must be positive, got {shots}")
        if not self.is_normalized(tolerance=1e-6):
            raise StateError("cannot sample from an unnormalised state")
        if rng is None:
            rng = np.random.default_rng()
        probabilities = np.abs(self._amplitudes) ** 2
        probabilities = probabilities / probabilities.sum()
        outcomes = rng.choice(self.size, size=shots, p=probabilities)
        histogram: dict[tuple[int, ...], int] = {}
        for index in outcomes:
            digits = self._register.digits(int(index))
            histogram[digits] = histogram.get(digits, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StateVector):
            return self._register == other._register and np.array_equal(
                self._amplitudes, other._amplitudes
            )
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashable
        raise TypeError("StateVector is not hashable")

    def isclose(self, other: "StateVector", tolerance: float = 1e-9) -> bool:
        """Element-wise closeness over the same register."""
        return self._register == other._register and bool(
            np.allclose(
                self._amplitudes, other._amplitudes, atol=tolerance, rtol=0.0
            )
        )

    def __repr__(self) -> str:
        return (
            f"StateVector(dims={list(self.dims)}, "
            f"nonzero={self.num_nonzero()}/{self.size})"
        )

    def __str__(self) -> str:
        terms = []
        for digits, amplitude in self.nonzero_terms():
            label = "".join(str(d) for d in digits)
            terms.append(f"({amplitude:.4g})|{label}>")
            if len(terms) >= 8:
                terms.append("...")
                break
        return " + ".join(terms) if terms else "0"
