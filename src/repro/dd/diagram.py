"""The :class:`DecisionDiagram` facade.

Bundles a root edge, the register it is defined over, and the unique
table its nodes live in, and exposes queries (amplitudes, vector
reconstruction), structural statistics (DAG and tree node counts,
distinct complex values), and traversal helpers used by the synthesis
and approximation routines.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.dd.edge import Edge
from repro.dd.node import DDNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import DecisionDiagramError, DimensionError
from repro.linalg.complex_table import ComplexTable
from repro.registers import QuditRegister
from repro.registers.register import RegisterLike, as_register
from repro.states.statevector import StateVector

__all__ = ["DecisionDiagram", "DiagramStats"]


@dataclass(frozen=True)
class DiagramStats:
    """Structural statistics gathered in one DAG traversal.

    Produced by :meth:`DecisionDiagram.collect_stats`; the fields
    match the separate :meth:`~DecisionDiagram.num_nodes`,
    :meth:`~DecisionDiagram.num_edges`,
    :meth:`~DecisionDiagram.distinct_complex_values` and
    :meth:`~DecisionDiagram.nodes_per_level` queries exactly.

    Attributes:
        num_nodes: Distinct reachable non-terminal nodes (DAG size).
        num_edges: Total out-edges of reachable nodes.
        distinct_complex: Distinct complex values (root weight plus
            all edge weights) at the collection tolerance.
        nodes_per_level: Histogram of distinct nodes by level.
    """

    num_nodes: int
    num_edges: int
    distinct_complex: int
    nodes_per_level: dict[int, int] = field(default_factory=dict)


class DecisionDiagram:
    """An edge-weighted decision diagram over a mixed-dimensional register.

    Instances are produced by :func:`repro.dd.builder.build_dd` and by
    :func:`repro.dd.approximation.approximate`; direct construction is
    possible when the root edge already satisfies the canonical
    invariants.
    """

    __slots__ = ("_root", "_register", "_table")

    def __init__(
        self,
        root: Edge,
        register: RegisterLike,
        table: UniqueTable,
    ):
        self._root = root
        self._register = as_register(register)
        self._table = table
        if not root.is_zero and root.node.is_terminal:
            raise DecisionDiagramError(
                "root edge of a non-trivial diagram must point to a node"
            )
        if not root.is_zero and root.node.level != 0:
            raise DecisionDiagramError(
                f"root node must be at level 0, got {root.node.level}"
            )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def root(self) -> Edge:
        """The root edge (its weight carries global norm and phase)."""
        return self._root

    @property
    def register(self) -> QuditRegister:
        """The register the diagram is defined over."""
        return self._register

    @property
    def dims(self) -> tuple[int, ...]:
        """Per-qudit dimensions."""
        return self._register.dims

    @property
    def unique_table(self) -> UniqueTable:
        """The unique table interning this diagram's nodes."""
        return self._table

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def amplitude(self, digits: Sequence[int]) -> complex:
        """Amplitude of the basis state ``|digits>``.

        Computed by multiplying the edge weights along the path from
        the root, exactly as in Example 4 of the paper.
        """
        if len(digits) != self._register.num_qudits:
            raise DimensionError(
                f"expected {self._register.num_qudits} digits, "
                f"got {len(digits)}"
            )
        value = self._root.weight
        node = self._root.node
        for level, digit in enumerate(digits):
            if node.is_terminal:
                return 0.0 if self._root.is_zero else value
            if not 0 <= digit < node.dimension:
                raise DimensionError(
                    f"digit {digit} out of range at level {level}"
                )
            edge = node.successor(digit)
            if edge.is_zero:
                return 0.0
            value *= edge.weight
            node = edge.node
        return value

    def to_statevector(self) -> StateVector:
        """Reconstruct the dense state vector represented by the DD."""
        cache: dict[DDNode, np.ndarray] = {}
        dims = self.dims

        def expand(node: DDNode, level: int) -> np.ndarray:
            if node in cache:
                return cache[node]
            size = 1
            for dim in dims[level + 1 :]:
                size *= dim
            parts = []
            for edge in node.edges:
                if edge.is_zero:
                    parts.append(np.zeros(size, dtype=np.complex128))
                elif edge.node.is_terminal:
                    parts.append(
                        np.array([edge.weight], dtype=np.complex128)
                    )
                else:
                    parts.append(edge.weight * expand(edge.node, level + 1))
            vector = np.concatenate(parts)
            cache[node] = vector
            return vector

        if self._root.is_zero:
            return StateVector(
                np.zeros(self._register.size, dtype=np.complex128),
                self._register,
            )
        return StateVector(
            self._root.weight * expand(self._root.node, 0), self._register
        )

    # ------------------------------------------------------------------
    # Traversal and statistics
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[DDNode]:
        """Yield the distinct non-terminal nodes reachable from the root.

        Nodes are yielded in depth-first pre-order; each shared node is
        visited once (DAG traversal, not tree expansion).
        """
        if self._root.is_zero:
            return
        seen: set[int] = set()
        stack = [self._root.node]
        while stack:
            node = stack.pop()
            if id(node) in seen or node.is_terminal:
                continue
            seen.add(id(node))
            yield node
            for edge in reversed(node.edges):
                if not edge.is_zero and not edge.node.is_terminal:
                    stack.append(edge.node)

    def num_nodes(self) -> int:
        """Number of distinct reachable non-terminal nodes (DAG size)."""
        return sum(1 for _ in self.nodes())

    def num_edges(self) -> int:
        """Total number of out-edges of reachable nodes."""
        return sum(node.dimension for node in self.nodes())

    def distinct_complex_values(
        self, tolerance: float = 1e-12
    ) -> int:
        """Number of distinct complex values in the diagram.

        This is the "DistinctC" metric of Table 1: all edge weights of
        reachable nodes plus the root weight, deduplicated through a
        complex table at the given tolerance.
        """
        table = ComplexTable(tolerance)
        table.lookup(self._root.weight)
        for node in self.nodes():
            for weight in node.weights:
                table.lookup(weight)
        return len(table)

    def nodes_per_level(self) -> dict[int, int]:
        """Histogram of distinct reachable nodes by level."""
        histogram: dict[int, int] = {}
        for node in self.nodes():
            histogram[node.level] = histogram.get(node.level, 0) + 1
        return histogram

    def collect_stats(self, tolerance: float = 1e-12) -> DiagramStats:
        """Gather all structural statistics in a single traversal.

        ``prepare_state`` used to walk the DAG once per metric (node
        count, edge count, distinct complex values, per-level
        histogram); this visits every reachable node exactly once and
        accumulates all four, which matters when reports are produced
        for large batches.

        Args:
            tolerance: Uniquing tolerance for the DistinctC count
                (matches :meth:`distinct_complex_values`).
        """
        num_nodes = 0
        num_edges = 0
        histogram: dict[int, int] = {}
        table = ComplexTable(tolerance)
        lookup = table.lookup
        lookup(self._root.weight)
        for node in self.nodes():
            num_nodes += 1
            num_edges += node.dimension
            level = node.level
            histogram[level] = histogram.get(level, 0) + 1
            for edge in node.edges:
                lookup(edge.weight)
        return DiagramStats(
            num_nodes=num_nodes,
            num_edges=num_edges,
            distinct_complex=len(table),
            nodes_per_level=histogram,
        )

    def is_product_at(self, node: DDNode) -> bool:
        """Whether ``node`` factorises from its subtree (tensor rule)."""
        return node.unique_nonzero_child() is not None

    def __repr__(self) -> str:
        return (
            f"DecisionDiagram(dims={list(self.dims)}, "
            f"nodes={self.num_nodes()})"
        )
