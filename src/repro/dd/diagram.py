"""The :class:`DecisionDiagram` facade.

Bundles a root edge, the register it is defined over, and the unique
table its nodes live in, and exposes queries (amplitudes, vector
reconstruction), structural statistics (DAG and tree node counts,
distinct complex values), and traversal helpers used by the synthesis
and approximation routines.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.dd.arena import NodeArena, NodeView
from repro.dd.edge import Edge
from repro.dd.node import DDNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import DecisionDiagramError, DimensionError
from repro.linalg.complex_table import ComplexTable
from repro.registers import QuditRegister
from repro.registers.register import RegisterLike, as_register
from repro.states.statevector import StateVector

__all__ = ["DecisionDiagram", "DiagramStats"]


@dataclass(frozen=True)
class DiagramStats:
    """Structural statistics gathered in one DAG traversal.

    Produced by :meth:`DecisionDiagram.collect_stats`; the fields
    match the separate :meth:`~DecisionDiagram.num_nodes`,
    :meth:`~DecisionDiagram.num_edges`,
    :meth:`~DecisionDiagram.distinct_complex_values` and
    :meth:`~DecisionDiagram.nodes_per_level` queries exactly.

    Attributes:
        num_nodes: Distinct reachable non-terminal nodes (DAG size).
        num_edges: Total out-edges of reachable nodes.
        distinct_complex: Distinct complex values (root weight plus
            all edge weights) at the collection tolerance.
        nodes_per_level: Histogram of distinct nodes by level.
        arena_bytes: Allocated bytes of the arena node store backing
            this diagram (0 on the object path).
        peak_arena_bytes: High-water mark of the arena allocation
            (0 on the object path).
    """

    num_nodes: int
    num_edges: int
    distinct_complex: int
    nodes_per_level: dict[int, int] = field(default_factory=dict)
    arena_bytes: int = 0
    peak_arena_bytes: int = 0


def _rebuild_arena_diagram(
    arena: NodeArena,
    root_id: int,
    root_weight: complex,
    dims: tuple[int, ...],
) -> "DecisionDiagram":
    """Pickle hook: reconnect a root id to its (unpickled) arena."""
    return DecisionDiagram(
        Edge(root_weight, arena.view(root_id)), dims, arena
    )


def _rebuild_object_diagram(text: str) -> "DecisionDiagram":
    """Pickle hook: reload an object-backed diagram from DDTXT."""
    from repro.dd import io

    return io.loads(text)


class DecisionDiagram:
    """An edge-weighted decision diagram over a mixed-dimensional register.

    Instances are produced by :func:`repro.dd.builder.build_dd` and by
    :func:`repro.dd.approximation.approximate`; direct construction is
    possible when the root edge already satisfies the canonical
    invariants.
    """

    __slots__ = ("_root", "_register", "_table", "_fallback", "_arena_cache")

    def __init__(
        self,
        root: Edge,
        register: RegisterLike,
        table: UniqueTable | NodeArena,
    ):
        self._root = root
        self._register = as_register(register)
        self._table = table
        self._fallback: UniqueTable | None = None
        self._arena_cache: dict | bool | None = None
        if not root.is_zero and root.node.is_terminal:
            raise DecisionDiagramError(
                "root edge of a non-trivial diagram must point to a node"
            )
        if not root.is_zero and root.node.level != 0:
            raise DecisionDiagramError(
                f"root node must be at level 0, got {root.node.level}"
            )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def root(self) -> Edge:
        """The root edge (its weight carries global norm and phase)."""
        return self._root

    @property
    def register(self) -> QuditRegister:
        """The register the diagram is defined over."""
        return self._register

    @property
    def dims(self) -> tuple[int, ...]:
        """Per-qudit dimensions."""
        return self._register.dims

    @property
    def unique_table(self) -> UniqueTable:
        """A unique table for object-path operations on this diagram.

        On the object path this is the table interning the diagram's
        nodes.  On the arena path — where interning happens in the
        :class:`~repro.dd.arena.NodeArena` — this is a lazily created
        empty table, so code that rebuilds nodes through
        ``normalize_edges``/``get_node`` (approximation, projection,
        the DD simulator) keeps working; the rebuilt diagrams come out
        object-backed.  See :attr:`node_store` for the actual store.
        """
        if isinstance(self._table, UniqueTable):
            return self._table
        if self._fallback is None:
            self._fallback = UniqueTable()
        return self._fallback

    @property
    def node_store(self) -> "UniqueTable | NodeArena":
        """The store the diagram's nodes actually live in."""
        return self._table

    @property
    def arena(self) -> NodeArena | None:
        """The backing :class:`NodeArena`, or ``None`` (object path)."""
        table = self._table
        return table if isinstance(table, NodeArena) else None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def amplitude(self, digits: Sequence[int]) -> complex:
        """Amplitude of the basis state ``|digits>``.

        Computed by multiplying the edge weights along the path from
        the root, exactly as in Example 4 of the paper.
        """
        if len(digits) != self._register.num_qudits:
            raise DimensionError(
                f"expected {self._register.num_qudits} digits, "
                f"got {len(digits)}"
            )
        value = self._root.weight
        node = self._root.node
        for level, digit in enumerate(digits):
            if node.is_terminal:
                return 0.0 if self._root.is_zero else value
            if not 0 <= digit < node.dimension:
                raise DimensionError(
                    f"digit {digit} out of range at level {level}"
                )
            edge = node.successor(digit)
            if edge.is_zero:
                return 0.0
            value *= edge.weight
            node = edge.node
        return value

    # ------------------------------------------------------------------
    # Arena array programs
    # ------------------------------------------------------------------
    def _arena_program(self) -> dict | None:
        """Host-side columns plus per-level reachable ids (cached).

        Returns ``None`` unless this diagram is arena-backed (its
        store is a :class:`NodeArena` and the root is one of its
        views).  The program is the shared input of the array-based
        fast paths: trimmed column snapshots and ``layers[k]`` — the
        ids of the reachable level-``k`` nodes — computed with one
        vectorised breadth-first sweep (successors are strictly
        deeper, so the frontier of step ``k`` is exactly level ``k``).
        """
        cached = self._arena_cache
        if cached is None:
            cached = self._compute_arena_program()
            self._arena_cache = cached if cached is not None else False
        return cached if cached is not False else None

    def _compute_arena_program(self) -> dict | None:
        table = self._table
        root = self._root
        if (
            not isinstance(table, NodeArena)
            or root.is_zero
            or not isinstance(root.node, NodeView)
            or root.node.arena is not table
        ):
            return None
        to_numpy = table.backend.to_numpy
        num_ids = table._num_nodes
        num_edges = table._num_edges
        offsets = to_numpy(table._offsets[:num_ids])
        counts = to_numpy(table._counts[:num_ids])
        weights = to_numpy(table._weights[:num_edges])
        successors = to_numpy(table._successors[:num_edges])
        dims = self.dims
        layers: list[np.ndarray] = []
        frontier = np.array([root.node.node_id], dtype=np.int64)
        for level in range(len(dims)):
            layers.append(frontier)
            edge_index = offsets[frontier][:, None] + np.arange(
                dims[level]
            )
            edge_weights = weights[edge_index]
            children = successors[edge_index]
            children = children[(edge_weights != 0j) & (children != 0)]
            frontier = np.unique(children)
            if frontier.size == 0:
                break
        return {
            "arena": table,
            "num_ids": num_ids,
            "offsets": offsets,
            "counts": counts,
            "weights": weights,
            "successors": successors,
            "layers": layers,
            "root_id": int(root.node.node_id),
        }

    def _arena_edge_matrix(
        self, program: dict, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(weights, successors)`` of one reachable layer, as
        ``(n_level, dimension)`` matrices."""
        ids = program["layers"][level]
        edge_index = program["offsets"][ids][:, None] + np.arange(
            self.dims[level]
        )
        return (
            program["weights"][edge_index],
            program["successors"][edge_index],
        )

    def _arena_distinct_complex(
        self, program: dict, tolerance: float
    ) -> int:
        table = ComplexTable(tolerance)
        table.lookup(self._root.weight)
        gathered = [
            self._arena_edge_matrix(program, level)[0].ravel()
            for level in range(len(program["layers"]))
        ]
        if gathered:
            table.lookup_many(np.concatenate(gathered))
        return len(table)

    def _arena_statevector(self, program: dict) -> StateVector | None:
        """Bottom-up dense expansion over the arena columns.

        Per level (deepest first) the child vectors are gathered by
        id, scaled by the edge-weight matrix, and concatenated by
        reshape — one array program per level, no per-node recursion.
        Returns ``None`` for non-canonical diagrams (a non-zero
        terminal edge above the last level), which fall back to the
        object traversal.
        """
        dims = self.dims
        layers = program["layers"]
        if len(layers) < len(dims):
            return None
        position = np.zeros(program["num_ids"], dtype=np.intp)
        vectors: np.ndarray | None = None
        for level in range(len(dims) - 1, -1, -1):
            edge_weights, children = self._arena_edge_matrix(
                program, level
            )
            if vectors is None:
                vectors = edge_weights.copy()
            else:
                if np.any((children == 0) & (edge_weights != 0j)):
                    return None
                rows, dimension = edge_weights.shape
                gathered = vectors[position[children.ravel()]]
                gathered = gathered * edge_weights.reshape(-1, 1)
                gathered[children.ravel() == 0] = 0.0
                vectors = gathered.reshape(rows, -1)
            position[layers[level]] = np.arange(layers[level].size)
        amplitudes = self._root.weight * vectors[0]
        return StateVector(amplitudes, self._register)

    def to_statevector(self) -> StateVector:
        """Reconstruct the dense state vector represented by the DD."""
        program = self._arena_program()
        if program is not None:
            result = self._arena_statevector(program)
            if result is not None:
                return result
        cache: dict[DDNode, np.ndarray] = {}
        dims = self.dims

        def expand(node: DDNode, level: int) -> np.ndarray:
            if node in cache:
                return cache[node]
            size = 1
            for dim in dims[level + 1 :]:
                size *= dim
            parts = []
            for edge in node.edges:
                if edge.is_zero:
                    parts.append(np.zeros(size, dtype=np.complex128))
                elif edge.node.is_terminal:
                    parts.append(
                        np.array([edge.weight], dtype=np.complex128)
                    )
                else:
                    parts.append(edge.weight * expand(edge.node, level + 1))
            vector = np.concatenate(parts)
            cache[node] = vector
            return vector

        if self._root.is_zero:
            return StateVector(
                np.zeros(self._register.size, dtype=np.complex128),
                self._register,
            )
        return StateVector(
            self._root.weight * expand(self._root.node, 0), self._register
        )

    # ------------------------------------------------------------------
    # Traversal and statistics
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[DDNode]:
        """Yield the distinct non-terminal nodes reachable from the root.

        Nodes are yielded in depth-first pre-order; each shared node is
        visited once (DAG traversal, not tree expansion).
        """
        if self._root.is_zero:
            return
        seen: set[int] = set()
        stack = [self._root.node]
        while stack:
            node = stack.pop()
            if id(node) in seen or node.is_terminal:
                continue
            seen.add(id(node))
            yield node
            for edge in reversed(node.edges):
                if not edge.is_zero and not edge.node.is_terminal:
                    stack.append(edge.node)

    def num_nodes(self) -> int:
        """Number of distinct reachable non-terminal nodes (DAG size)."""
        program = self._arena_program()
        if program is not None:
            return sum(layer.size for layer in program["layers"])
        return sum(1 for _ in self.nodes())

    def num_edges(self) -> int:
        """Total number of out-edges of reachable nodes."""
        program = self._arena_program()
        if program is not None:
            return int(
                sum(
                    layer.size * self.dims[level]
                    for level, layer in enumerate(program["layers"])
                )
            )
        return sum(node.dimension for node in self.nodes())

    def distinct_complex_values(
        self, tolerance: float = 1e-12
    ) -> int:
        """Number of distinct complex values in the diagram.

        This is the "DistinctC" metric of Table 1: all edge weights of
        reachable nodes plus the root weight, deduplicated through a
        complex table at the given tolerance.
        """
        program = self._arena_program()
        if program is not None:
            return self._arena_distinct_complex(program, tolerance)
        table = ComplexTable(tolerance)
        table.lookup(self._root.weight)
        for node in self.nodes():
            for weight in node.weights:
                table.lookup(weight)
        return len(table)

    def nodes_per_level(self) -> dict[int, int]:
        """Histogram of distinct reachable nodes by level."""
        program = self._arena_program()
        if program is not None:
            return {
                level: int(layer.size)
                for level, layer in enumerate(program["layers"])
                if layer.size
            }
        histogram: dict[int, int] = {}
        for node in self.nodes():
            histogram[node.level] = histogram.get(node.level, 0) + 1
        return histogram

    def collect_stats(self, tolerance: float = 1e-12) -> DiagramStats:
        """Gather all structural statistics in a single traversal.

        ``prepare_state`` used to walk the DAG once per metric (node
        count, edge count, distinct complex values, per-level
        histogram); this visits every reachable node exactly once and
        accumulates all four, which matters when reports are produced
        for large batches.

        Args:
            tolerance: Uniquing tolerance for the DistinctC count
                (matches :meth:`distinct_complex_values`).
        """
        program = self._arena_program()
        if program is not None:
            arena = program["arena"]
            return DiagramStats(
                num_nodes=self.num_nodes(),
                num_edges=self.num_edges(),
                distinct_complex=self._arena_distinct_complex(
                    program, tolerance
                ),
                nodes_per_level=self.nodes_per_level(),
                arena_bytes=arena.nbytes,
                peak_arena_bytes=arena.peak_bytes,
            )
        num_nodes = 0
        num_edges = 0
        histogram: dict[int, int] = {}
        table = ComplexTable(tolerance)
        lookup = table.lookup
        lookup(self._root.weight)
        for node in self.nodes():
            num_nodes += 1
            num_edges += node.dimension
            level = node.level
            histogram[level] = histogram.get(level, 0) + 1
            for edge in node.edges:
                lookup(edge.weight)
        return DiagramStats(
            num_nodes=num_nodes,
            num_edges=num_edges,
            distinct_complex=len(table),
            nodes_per_level=histogram,
        )

    def is_product_at(self, node: DDNode) -> bool:
        """Whether ``node`` factorises from its subtree (tensor rule)."""
        return node.unique_nonzero_child() is not None

    def __reduce__(self):
        """Serialise compactly.

        Arena-backed diagrams pickle as ``(arena, root id, root
        weight, dims)`` — the arena ships its trimmed columns, so the
        payload is a handful of flat arrays rather than a per-node
        object graph.  Object-backed diagrams round-trip through the
        DDTXT text format (children-first, repr-exact weights) and are
        re-interned on load.
        """
        root = self._root
        if isinstance(self._table, NodeArena) and isinstance(
            root.node, NodeView
        ):
            return (
                _rebuild_arena_diagram,
                (
                    self._table,
                    int(root.node.node_id),
                    root.weight,
                    self.dims,
                ),
            )
        from repro.dd import io

        return (_rebuild_object_diagram, (io.dumps(self),))

    def __repr__(self) -> str:
        return (
            f"DecisionDiagram(dims={list(self.dims)}, "
            f"nodes={self.num_nodes()})"
        )
