"""Textual serialisation of decision diagrams ("DDTXT").

A line-oriented exchange format preserving the shared-graph structure
exactly, so diagrams can be stored, diffed, and reloaded without a
round-trip through dense vectors.  Example document::

    DDTXT 1.0
    dims 3 2
    node 0 level=1 edges=1+0j@T,0@T
    node 1 level=1 edges=0@T,1+0j@T
    node 2 level=0 edges=0.5774+0j@0,-0.5774+0j@1,0.5774+0j@1
    root 1+0j@2

Node lines are in children-first order, so every reference ``@k``
points to an already-declared node; ``@T`` is the terminal.  Weights
use ``repr`` round-trippable complex literals.
"""

from __future__ import annotations

from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL, DDNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import SerializationError

__all__ = ["dumps", "loads"]

_HEADER = "DDTXT 1.0"


def _format_weight(weight: complex) -> str:
    return repr(complex(weight)).strip("()")


def dumps(dd: DecisionDiagram) -> str:
    """Serialise a decision diagram to DDTXT."""
    lines = [_HEADER, "dims " + " ".join(str(d) for d in dd.dims)]
    if dd.root.is_zero:
        lines.append("root 0j@T")
        return "\n".join(lines) + "\n"

    numbering: dict[int, int] = {}
    ordered: list[DDNode] = []

    def visit(node: DDNode) -> None:
        if id(node) in numbering or node.is_terminal:
            return
        for edge in node.edges:
            if not edge.is_zero:
                visit(edge.node)
        numbering[id(node)] = len(ordered)
        ordered.append(node)

    visit(dd.root.node)
    for index, node in enumerate(ordered):
        edge_fields = []
        for edge in node.edges:
            if edge.is_zero:
                edge_fields.append("0@T")
            elif edge.node.is_terminal:
                edge_fields.append(f"{_format_weight(edge.weight)}@T")
            else:
                edge_fields.append(
                    f"{_format_weight(edge.weight)}"
                    f"@{numbering[id(edge.node)]}"
                )
        lines.append(
            f"node {index} level={node.level} "
            f"edges={','.join(edge_fields)}"
        )
    root_ref = numbering[id(dd.root.node)]
    lines.append(f"root {_format_weight(dd.root.weight)}@{root_ref}")
    return "\n".join(lines) + "\n"


def _parse_edge(
    token: str, nodes: dict[int, DDNode], line_no: int
) -> Edge:
    if "@" not in token:
        raise SerializationError(
            f"line {line_no}: malformed edge {token!r}"
        )
    weight_text, target_text = token.rsplit("@", 1)
    try:
        weight = complex(weight_text)
    except ValueError as error:
        raise SerializationError(
            f"line {line_no}: malformed weight {weight_text!r}"
        ) from error
    if target_text == "T":
        if weight == 0:
            return Edge.zero()
        return Edge(weight, TERMINAL)
    try:
        target = nodes[int(target_text)]
    except (ValueError, KeyError) as error:
        raise SerializationError(
            f"line {line_no}: unknown node reference {target_text!r}"
        ) from error
    return Edge(weight, target)


def loads(
    text: str, table: UniqueTable | None = None
) -> DecisionDiagram:
    """Parse DDTXT back into a decision diagram.

    Nodes are re-interned through the unique table, so loading a dump
    into the table of an existing session shares structure with the
    diagrams already there.

    Raises:
        SerializationError: On any malformed input.
    """
    if table is None:
        table = UniqueTable()
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines or lines[0] != _HEADER:
        raise SerializationError(f"missing header {_HEADER!r}")
    if len(lines) < 2 or not lines[1].startswith("dims "):
        raise SerializationError("missing 'dims' declaration")
    try:
        dims = tuple(int(token) for token in lines[1].split()[1:])
    except ValueError as error:
        raise SerializationError("malformed 'dims' declaration") from error

    nodes: dict[int, DDNode] = {}
    root: Edge | None = None
    for offset, line in enumerate(lines[2:], start=3):
        tokens = line.split()
        if tokens[0] == "node":
            if len(tokens) != 4:
                raise SerializationError(
                    f"line {offset}: malformed node line"
                )
            index = int(tokens[1])
            if not tokens[2].startswith("level="):
                raise SerializationError(
                    f"line {offset}: missing level field"
                )
            level = int(tokens[2][len("level="):])
            if not tokens[3].startswith("edges="):
                raise SerializationError(
                    f"line {offset}: missing edges field"
                )
            edges = [
                _parse_edge(token, nodes, offset)
                for token in tokens[3][len("edges="):].split(",")
            ]
            if not 0 <= level < len(dims):
                raise SerializationError(
                    f"line {offset}: level {level} out of range"
                )
            if len(edges) != dims[level]:
                raise SerializationError(
                    f"line {offset}: node at level {level} needs "
                    f"{dims[level]} edges, got {len(edges)}"
                )
            nodes[index] = table.get_node(level, edges)
        elif tokens[0] == "root":
            if len(tokens) != 2:
                raise SerializationError(
                    f"line {offset}: malformed root line"
                )
            root = _parse_edge(tokens[1], nodes, offset)
        else:
            raise SerializationError(
                f"line {offset}: unknown directive {tokens[0]!r}"
            )
    if root is None:
        raise SerializationError("missing 'root' line")
    return DecisionDiagram(root, dims, table)
