"""Fidelity-driven approximation of decision diagrams.

Implements the generalisation of [Hillmich et al., ACM TQC 2022]
described in Section 4.3 of the paper: the *contribution* of a node is
the total squared magnitude of all amplitudes whose root-to-leaf path
crosses the node; nodes (and individual leaf amplitudes, which the
paper's node metric counts as nodes) are greedily removed in order of
increasing contribution while the cumulative removed mass stays within
the budget ``1 - min_fidelity``.  After pruning, the diagram is
renormalised bottom-up, so the result is again canonical and represents
a unit-norm state whose fidelity with the original is ``1 - removed
mass`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dd.builder import normalize_edges
from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import WEIGHT_ZERO_CUTOFF, Edge
from repro.dd.node import DDNode, TERMINAL
from repro.dd.unique_table import UniqueTable
from repro.exceptions import ApproximationError

__all__ = [
    "ApproximationResult",
    "approximate",
    "fidelity_contributions",
]

#: Contributions below this threshold are treated as "already absent"
#: and skipped by the candidate scan (removing them changes nothing).
_NEGLIGIBLE = 1e-15


@dataclass
class ApproximationResult:
    """Outcome of :func:`approximate`.

    Attributes:
        diagram: The pruned, renormalised decision diagram.
        fidelity: Exact fidelity ``|<original|approximated>|^2``.
        removed_mass: Total squared-magnitude mass pruned away.
        removed_nodes: Number of internal nodes removed.
        removed_leaves: Number of individual leaf amplitudes removed.
        removal_log: Contributions of the removals, in removal order.
    """

    diagram: DecisionDiagram
    fidelity: float
    removed_mass: float
    removed_nodes: int
    removed_leaves: int
    removal_log: list[float] = field(default_factory=list)


class _MutableNode:
    """Mutable mirror of a DD node used during pruning."""

    __slots__ = ("level", "weights", "children")

    def __init__(self, level: int, weights: list[complex],
                 children: list["_MutableNode | None"]):
        self.level = level
        self.weights = weights
        self.children = children  # None encodes the terminal


def _mutable_copy(dd: DecisionDiagram) -> tuple[_MutableNode, complex,
                                                list[_MutableNode]]:
    """Deep-copy the reachable DAG into mutable nodes.

    Returns the mutable root, the root edge weight, and all mutable
    nodes in topological (root-first) order.  Sharing is preserved:
    a shared DD node maps to a single mutable node.
    """
    mapping: dict[int, _MutableNode] = {}
    order: list[_MutableNode] = []

    def convert(node: DDNode) -> _MutableNode:
        existing = mapping.get(id(node))
        if existing is not None:
            return existing
        mutable = _MutableNode(node.level, list(node.weights),
                               [None] * node.dimension)
        mapping[id(node)] = mutable
        for digit, edge in enumerate(node.edges):
            if not edge.is_zero and not edge.node.is_terminal:
                mutable.children[digit] = convert(edge.node)
        order.append(mutable)
        return mutable

    root = convert(dd.root.node)
    # ``order`` is children-first; reverse for root-first topological order.
    order.reverse()
    return root, dd.root.weight, order


def _subtree_masses(order: list[_MutableNode]) -> dict[int, float]:
    """Squared-norm of each mutable subtree (children-first pass)."""
    masses: dict[int, float] = {}
    for node in reversed(order):
        total = 0.0
        for weight, child in zip(node.weights, node.children):
            magnitude = abs(weight) ** 2
            if magnitude <= _NEGLIGIBLE:
                continue
            total += magnitude * (1.0 if child is None
                                  else masses[id(child)])
        masses[id(node)] = total
    return masses


def _influxes(root: _MutableNode, root_weight: complex,
              order: list[_MutableNode]) -> dict[int, float]:
    """Total squared path weight from the root into each node."""
    influx: dict[int, float] = {id(node): 0.0 for node in order}
    influx[id(root)] = abs(root_weight) ** 2
    for node in order:
        incoming = influx[id(node)]
        if incoming <= _NEGLIGIBLE:
            continue
        for weight, child in zip(node.weights, node.children):
            if child is not None and abs(weight) ** 2 > _NEGLIGIBLE:
                influx[id(child)] += incoming * abs(weight) ** 2
    return influx


def fidelity_contributions(dd: DecisionDiagram) -> dict[DDNode, float]:
    """Contribution of every reachable node of a canonical diagram.

    The contribution of a node is the summed squared magnitude of all
    amplitudes whose path crosses the node (Section 4.3 of the paper).
    For a normalised state the root contributes 1.
    """
    root, root_weight, order = _mutable_copy(dd)
    masses = _subtree_masses(order)
    influx = _influxes(root, root_weight, order)
    # Map mutable ids back to the original DD nodes.
    result: dict[DDNode, float] = {}
    mutable_by_id = {id(m): m for m in order}
    # Rebuild the correspondence by walking both structures in parallel.
    pairs: dict[int, DDNode] = {}

    def pair(node: DDNode, mutable: _MutableNode) -> None:
        if id(mutable) in pairs:
            return
        pairs[id(mutable)] = node
        for edge, child in zip(node.edges, mutable.children):
            if child is not None:
                pair(edge.node, child)

    pair(dd.root.node, root)
    for mutable_id, node in pairs.items():
        mutable = mutable_by_id[mutable_id]
        result[node] = influx[mutable_id] * masses[id(mutable)]
    return result


def _leaf_candidates(
    root: _MutableNode,
    root_weight: complex,
    order: list[_MutableNode],
) -> list[tuple[float, int, _MutableNode, int]]:
    """List leaf-amplitude candidates ``(mass, tiebreak, node, digit)``.

    A leaf candidate is one terminal edge (one amplitude); zeroing it
    never changes the influx of any other node, so the listed masses
    are mutually independent and sum exactly — the whole ascending
    prefix that fits the budget can be removed in one pass.
    """
    influx = _influxes(root, root_weight, order)
    result: list[tuple[float, int, _MutableNode, int]] = []
    for position, node in enumerate(order):
        incoming = influx[id(node)]
        if incoming <= _NEGLIGIBLE:
            continue
        for digit, (weight, child) in enumerate(
            zip(node.weights, node.children)
        ):
            if child is None and abs(weight) ** 2 > _NEGLIGIBLE:
                result.append(
                    (incoming * abs(weight) ** 2, position, node, digit)
                )
    result.sort(key=lambda item: (item[0], item[1]))
    return result


def _node_candidates(
    root: _MutableNode,
    root_weight: complex,
    order: list[_MutableNode],
) -> list[tuple[float, int, _MutableNode]]:
    """List whole-node candidates ``(contribution, tiebreak, node)``.

    Contributions are current (influx times remaining subtree mass).
    The root is never a candidate — removing it would erase the state.
    """
    masses = _subtree_masses(order)
    influx = _influxes(root, root_weight, order)
    result: list[tuple[float, int, _MutableNode]] = []
    for position, node in enumerate(order):
        if node is root:
            continue
        contribution = influx[id(node)] * masses[id(node)]
        if contribution > _NEGLIGIBLE:
            result.append((contribution, position, node))
    result.sort(key=lambda item: (item[0], item[1]))
    return result


def _remove_node(
    target: _MutableNode,
    parents: dict[int, list[_MutableNode]],
) -> None:
    """Zero every edge pointing at ``target``."""
    for parent in parents.get(id(target), []):
        for digit, child in enumerate(parent.children):
            if child is target:
                parent.weights[digit] = 0.0
                parent.children[digit] = None


def _parents_map(
    order: list[_MutableNode],
) -> dict[int, list[_MutableNode]]:
    """Reverse adjacency of the mutable graph (child id -> parents)."""
    parents: dict[int, list[_MutableNode]] = {}
    for node in order:
        for child in node.children:
            if child is not None:
                parents.setdefault(id(child), []).append(node)
    return parents


def _mark_relatives(
    node: _MutableNode,
    parents: dict[int, list[_MutableNode]],
    blocked: set[int],
) -> None:
    """Block ``node``, its ancestors, and its descendants.

    Removing a node changes the current contribution of exactly these
    relatives (ancestors lose subtree mass, descendants lose influx),
    so within one batched pass they may no longer be removed at their
    pre-computed contributions.
    """
    stack = [node]
    while stack:  # descendants
        current = stack.pop()
        if id(current) in blocked:
            continue
        blocked.add(id(current))
        stack.extend(
            child for child in current.children if child is not None
        )
    up = list(parents.get(id(node), []))
    while up:  # ancestors
        current = up.pop()
        if id(current) in blocked:
            continue
        blocked.add(id(current))
        up.extend(parents.get(id(current), []))


def _rebuild(
    root: _MutableNode, root_weight: complex, table: UniqueTable
) -> Edge:
    """Re-canonicalise a pruned mutable graph into shared DD nodes."""
    cache: dict[int, Edge] = {}

    def rebuild(node: _MutableNode) -> Edge:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        raw: list[Edge] = []
        for weight, child in zip(node.weights, node.children):
            if abs(weight) <= WEIGHT_ZERO_CUTOFF:
                raw.append(Edge.zero())
            elif child is None:
                raw.append(Edge(weight, TERMINAL))
            else:
                raw.append(rebuild(child).scaled(weight))
        edge = normalize_edges(raw, table, node.level)
        cache[id(node)] = edge
        return edge

    return rebuild(root).scaled(root_weight)


def approximate(
    dd: DecisionDiagram,
    min_fidelity: float,
    table: UniqueTable | None = None,
    granularity: str = "nodes",
) -> ApproximationResult:
    """Prune a decision diagram down to a fidelity budget.

    Args:
        dd: The (canonical, unit-norm) diagram to approximate.
        min_fidelity: Lower bound on ``|<original|result>|^2``; must be
            in ``(0, 1]``.  ``1.0`` returns the diagram unchanged.
        table: Optional unique table for the result; defaults to the
            input diagram's table.
        granularity: ``"nodes"`` (default) removes whole nodes, the
            paper's formulation ("removing nodes from the decision
            diagram until a threshold fidelity is reached");
            ``"amplitudes"`` additionally allows pruning individual
            terminal amplitudes, trading fidelity for diagram size at
            a finer grain.

    Returns:
        An :class:`ApproximationResult`; its ``fidelity`` field is the
        exact achieved fidelity, always >= ``min_fidelity``.

    Raises:
        ApproximationError: If ``min_fidelity`` is out of range or the
            granularity is unknown.
    """
    if not 0.0 < min_fidelity <= 1.0:
        raise ApproximationError(
            f"min_fidelity must be in (0, 1], got {min_fidelity}"
        )
    if granularity not in ("nodes", "amplitudes"):
        raise ApproximationError(
            f"unknown granularity {granularity!r}; "
            "expected 'nodes' or 'amplitudes'"
        )
    if table is None:
        table = dd.unique_table
    root, root_weight, order = _mutable_copy(dd)
    # A relative slack keeps boundary removals (contribution exactly
    # equal to the budget, up to rounding) from being rejected.
    budget = (1.0 - min_fidelity) * (1.0 + 1e-9) + 1e-12
    removed_mass = 0.0
    removed_nodes = 0
    removed_leaves = 0
    removal_log: list[float] = []

    while budget > _NEGLIGIBLE:
        progressed = False
        if granularity == "amplitudes":
            # Leaf amplitudes are mutually independent (removing one
            # never changes another's influx or weight), so the whole
            # ascending prefix that fits the budget goes in one pass
            # with exact accounting.
            for mass, _, node, digit in _leaf_candidates(
                root, root_weight, order
            ):
                if mass > budget:
                    break  # sorted ascending: nothing further fits
                node.weights[digit] = 0.0
                node.children[digit] = None
                removed_leaves += 1
                budget -= mass
                removed_mass += mass
                removal_log.append(mass)
                progressed = True
        # Whole-node pass.  Node contributions of relatives interact
        # (ancestors lose mass, descendants lose influx); candidates
        # that are not related can be removed in the same pass at
        # their pre-computed — exact — contributions.
        parents = _parents_map(order)
        blocked: set[int] = set()
        for contribution, _, node in _node_candidates(
            root, root_weight, order
        ):
            if contribution > budget:
                break
            if id(node) in blocked:
                continue
            _mark_relatives(node, parents, blocked)
            _remove_node(node, parents)
            removed_nodes += 1
            budget -= contribution
            removed_mass += contribution
            removal_log.append(contribution)
            progressed = True
        if not progressed:
            break

    rebuilt = _rebuild(root, root_weight, table)
    # Renormalise the approximated state to unit norm, keeping its phase.
    magnitude = abs(rebuilt.weight)
    if magnitude <= WEIGHT_ZERO_CUTOFF:  # pragma: no cover - budget < 1 guards
        raise ApproximationError("approximation removed the entire state")
    normalized_root = Edge(rebuilt.weight / magnitude, rebuilt.node)
    result_dd = DecisionDiagram(normalized_root, dd.register, table)

    from repro.dd.arithmetic import inner_product

    fidelity = abs(inner_product(dd, result_dd)) ** 2
    return ApproximationResult(
        diagram=result_dd,
        fidelity=float(min(max(fidelity, 0.0), 1.0)),
        removed_mass=removed_mass,
        removed_nodes=removed_nodes,
        removed_leaves=removed_leaves,
        removal_log=removal_log,
    )
