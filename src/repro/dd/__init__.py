"""Edge-weighted decision diagrams with a variable number of successors.

This package implements the data structure at the core of the paper:
a decision diagram (DD) over a mixed-dimensional qudit register, where
the node at level ``k`` has exactly ``d_k`` outgoing edges, each edge
carries a complex weight, and identical (canonically normalised)
sub-diagrams are shared through a unique table.

Main entry points:

* :func:`~repro.dd.builder.build_dd` — state vector to DD,
* :class:`~repro.dd.diagram.DecisionDiagram` — queries and metrics,
* :func:`~repro.dd.approximation.approximate` — fidelity-driven pruning,
* :mod:`~repro.dd.arithmetic` — inner products and linear combinations.
"""

from repro.dd.approximation import ApproximationResult, approximate
from repro.dd.arithmetic import inner_product
from repro.dd.builder import build_dd, build_dd_reference
from repro.dd.diagram import DecisionDiagram, DiagramStats
from repro.dd.edge import Edge
from repro.dd.measurement import collapse, measure_qudit
from repro.dd.node import TERMINAL, DDNode
from repro.dd.observables import (
    expectation_local_sum,
    level_populations,
)
from repro.dd.sampling import sample
from repro.dd.unique_table import UniqueTable
from repro.dd.validation import validate_diagram

__all__ = [
    "ApproximationResult",
    "DDNode",
    "DecisionDiagram",
    "DiagramStats",
    "Edge",
    "TERMINAL",
    "UniqueTable",
    "approximate",
    "build_dd",
    "build_dd_reference",
    "collapse",
    "expectation_local_sum",
    "inner_product",
    "level_populations",
    "measure_qudit",
    "sample",
    "validate_diagram",
]
