"""Edge-weighted decision diagrams with a variable number of successors.

This package implements the data structure at the core of the paper:
a decision diagram (DD) over a mixed-dimensional qudit register, where
the node at level ``k`` has exactly ``d_k`` outgoing edges, each edge
carries a complex weight, and identical (canonically normalised)
sub-diagrams are shared through a unique table.

Main entry points:

* :func:`~repro.dd.builder.build_dd` — state vector to DD,
* :class:`~repro.dd.diagram.DecisionDiagram` — queries and metrics,
* :func:`~repro.dd.approximation.approximate` — fidelity-driven pruning,
* :mod:`~repro.dd.arithmetic` — inner products and linear combinations.
"""

from repro.dd.approximation import ApproximationResult, approximate
from repro.dd.arena import ArenaStats, NodeArena, NodeView
from repro.dd.arithmetic import inner_product
from repro.dd.array_backend import (
    DD_BACKENDS,
    ArrayBackend,
    NumpyBackend,
    available_array_backends,
    default_dd_backend,
    get_array_backend,
    register_array_backend,
)
from repro.dd.builder import build_dd, build_dd_reference
from repro.dd.diagram import DecisionDiagram, DiagramStats
from repro.dd.edge import Edge
from repro.dd.measurement import collapse, measure_qudit
from repro.dd.node import TERMINAL, DDNode
from repro.dd.observables import (
    expectation_local_sum,
    level_populations,
)
from repro.dd.sampling import sample
from repro.dd.unique_table import UniqueTable
from repro.dd.validation import validate_diagram

__all__ = [
    "ApproximationResult",
    "ArenaStats",
    "ArrayBackend",
    "DD_BACKENDS",
    "DDNode",
    "DecisionDiagram",
    "DiagramStats",
    "Edge",
    "NodeArena",
    "NodeView",
    "NumpyBackend",
    "TERMINAL",
    "UniqueTable",
    "approximate",
    "available_array_backends",
    "build_dd",
    "build_dd_reference",
    "collapse",
    "default_dd_backend",
    "expectation_local_sum",
    "get_array_backend",
    "inner_product",
    "level_populations",
    "measure_qudit",
    "register_array_backend",
    "sample",
    "validate_diagram",
]
