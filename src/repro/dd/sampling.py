"""Measurement sampling directly from a decision diagram.

Sampling walks the diagram from the root, choosing each digit with
probability proportional to the squared magnitude of the corresponding
edge weight.  For canonical diagrams the per-node weights are already
normalised, so each step is a single categorical draw — no dense
probability vector is ever materialised.
"""

from __future__ import annotations

import numpy as np

from repro.dd.diagram import DecisionDiagram
from repro.exceptions import DecisionDiagramError

__all__ = ["sample"]


def sample(
    dd: DecisionDiagram,
    shots: int,
    rng: np.random.Generator | int | None = None,
) -> dict[tuple[int, ...], int]:
    """Sample computational-basis outcomes from a decision diagram.

    Args:
        dd: A canonical, unit-norm decision diagram.
        shots: Number of measurement samples (positive).
        rng: Numpy generator or seed for reproducibility.

    Returns:
        Histogram mapping digit tuples to counts.

    Raises:
        DecisionDiagramError: If ``shots`` is not positive or the
            diagram is zero.
    """
    if shots <= 0:
        raise DecisionDiagramError(f"shots must be positive, got {shots}")
    if dd.root.is_zero:
        raise DecisionDiagramError("cannot sample from the zero diagram")
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    num_qudits = dd.register.num_qudits
    histogram: dict[tuple[int, ...], int] = {}
    # Per-node outcome probabilities are cached; diagrams are small
    # compared to the number of shots in typical use.
    probability_cache: dict[int, np.ndarray] = {}

    for _ in range(shots):
        node = dd.root.node
        digits = []
        for _level in range(num_qudits):
            probabilities = probability_cache.get(id(node))
            if probabilities is None:
                probabilities = np.array(
                    [abs(w) ** 2 for w in node.weights], dtype=np.float64
                )
                total = probabilities.sum()
                if total <= 0.0:  # pragma: no cover - canonical DDs
                    raise DecisionDiagramError(
                        "reached a node without outgoing amplitude"
                    )
                probabilities = probabilities / total
                probability_cache[id(node)] = probabilities
            digit = int(
                generator.choice(node.dimension, p=probabilities)
            )
            digits.append(digit)
            edge = node.successor(digit)
            node = edge.node
        key = tuple(digits)
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
