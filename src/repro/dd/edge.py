"""Weighted edges of the decision diagram.

An edge bundles a complex weight with the node it points to.  Edges are
immutable value objects; the zero edge (weight 0, pointing at the
terminal) represents an absent subtree — the amplitude of every basis
state whose path takes a zero edge is 0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dd.node import DDNode

__all__ = ["Edge"]

#: Weights with magnitude below this value are normalised to exact zero
#: during DD construction, so "zero edge" is a crisp structural notion.
WEIGHT_ZERO_CUTOFF = 1e-14


class Edge:
    """A complex-weighted pointer to a decision-diagram node.

    Attributes:
        weight: Complex edge weight (normalisation factor of the
            subtree it points to).
        node: Target node; the shared terminal for leaf/zero edges.
    """

    __slots__ = ("weight", "node")

    def __init__(self, weight: complex, node: "DDNode"):
        object.__setattr__(self, "weight", complex(weight))
        object.__setattr__(self, "node", node)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Edge is immutable")

    @classmethod
    def zero(cls) -> "Edge":
        """Return a zero edge (absent subtree)."""
        from repro.dd.node import TERMINAL

        return cls(0.0, TERMINAL)

    @property
    def is_zero(self) -> bool:
        """Whether this edge carries no amplitude."""
        return abs(self.weight) <= WEIGHT_ZERO_CUTOFF

    @property
    def is_terminal(self) -> bool:
        """Whether this edge points to the terminal node."""
        return self.node.is_terminal

    def scaled(self, factor: complex) -> "Edge":
        """Return a copy of this edge with the weight multiplied."""
        if abs(factor) <= WEIGHT_ZERO_CUTOFF:
            return Edge.zero()
        return Edge(self.weight * factor, self.node)

    def __reduce__(self):
        # Immutability (__setattr__ raises) breaks the default slot
        # pickling; rebuild through the constructor instead.
        return (Edge, (self.weight, self.node))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Edge):
            return self.weight == other.weight and self.node is other.node
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.weight, id(self.node)))

    def __repr__(self) -> str:
        return f"Edge({self.weight:.6g} -> {self.node!r})"
