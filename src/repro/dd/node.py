"""Decision-diagram nodes with a variable number of successors.

A node at level ``k`` represents a (canonically normalised) quantum
state over the suffix register ``q_k, q_{k+1}, ..., q_{n-1}`` and has
exactly ``d_k`` outgoing edges, one per level of qudit ``k``.  The
shared :data:`TERMINAL` node sits below the last level and carries no
successors.

Canonical normalisation invariants (established by the builder and
checked by :meth:`DDNode.check_invariants`):

* the squared magnitudes of the out-edge weights sum to 1,
* the first non-zero out-edge weight is real and positive,
* zero-weight edges point to the terminal.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from repro.dd.edge import WEIGHT_ZERO_CUTOFF, Edge
from repro.exceptions import DecisionDiagramError

__all__ = ["DDNode", "TERMINAL"]


class DDNode:
    """A level of decision together with its weighted successors.

    Nodes are immutable after construction and are shared: identical
    ``(level, edges)`` combinations are represented by one object via
    the unique table, so identity comparison doubles as structural
    equality for canonically built diagrams.
    """

    __slots__ = ("level", "edges", "__weakref__")

    def __init__(self, level: int, edges: Sequence[Edge]):
        if level < 0 and edges:
            raise DecisionDiagramError(
                "only the terminal node may have no successors"
            )
        object.__setattr__(self, "level", level)
        object.__setattr__(self, "edges", tuple(edges))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DDNode is immutable")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        """Whether this is the shared terminal node."""
        return not self.edges

    @property
    def dimension(self) -> int:
        """Number of successors (the local dimension of the qudit)."""
        return len(self.edges)

    @property
    def weights(self) -> tuple[complex, ...]:
        """Out-edge weights in successor order."""
        return tuple(edge.weight for edge in self.edges)

    def successor(self, level_value: int) -> Edge:
        """Return the out-edge taken for digit ``level_value``."""
        return self.edges[level_value]

    def nonzero_edges(self) -> Iterator[tuple[int, Edge]]:
        """Yield ``(digit, edge)`` pairs for edges carrying amplitude."""
        for digit, edge in enumerate(self.edges):
            if not edge.is_zero:
                yield digit, edge

    def num_nonzero_edges(self) -> int:
        """Number of out-edges carrying amplitude."""
        return sum(1 for _ in self.nonzero_edges())

    def unique_nonzero_child(self) -> "DDNode | None":
        """Return the single child of all non-zero edges, if shared.

        This is the structural condition of the paper's tensor-product
        rule (Section 4.3): when every non-zero out-edge points to the
        same child, this node factorises from the subtree below and the
        child can be synthesised without a control on this qudit.
        Returns ``None`` when the condition does not hold or the node
        has no non-zero edges.
        """
        child: DDNode | None = None
        for _, edge in self.nonzero_edges():
            if child is None:
                child = edge.node
            elif child is not edge.node:
                return None
        return child

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_invariants(self, tolerance: float = 1e-9) -> None:
        """Assert the canonical normalisation invariants.

        Raises:
            DecisionDiagramError: If an invariant is violated.
        """
        if self.is_terminal:
            return
        total = math.fsum(abs(w) ** 2 for w in self.weights)
        if abs(total - 1.0) > tolerance:
            raise DecisionDiagramError(
                f"node at level {self.level}: squared weights sum to "
                f"{total}, expected 1"
            )
        for digit, edge in enumerate(self.edges):
            if edge.is_zero and not edge.node.is_terminal:
                raise DecisionDiagramError(
                    f"zero edge {digit} at level {self.level} does not "
                    "point to the terminal"
                )
        for _, edge in self.nonzero_edges():
            first = edge.weight
            if abs(first.imag) > tolerance or first.real <= 0:
                raise DecisionDiagramError(
                    f"first non-zero weight {first} at level {self.level} "
                    "is not real positive"
                )
            break

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------
    def __reduce__(self):
        # Immutability (__setattr__ raises) breaks the default slot
        # pickling; rebuild through _make_node, which also maps the
        # terminal back onto the shared TERMINAL singleton.
        return (_make_node, (self.level, self.edges))

    def __repr__(self) -> str:
        if self.is_terminal:
            return "TERMINAL"
        return f"DDNode(level={self.level}, dimension={self.dimension})"


#: The unique terminal node shared by all decision diagrams.
TERMINAL = DDNode(level=-1, edges=())


def _make_node(level: int, edges: tuple[Edge, ...]) -> DDNode:
    """Pickle hook: reconstruct a node, keeping TERMINAL unique."""
    if level < 0 and not edges:
        return TERMINAL
    return DDNode(level, edges)


def is_effectively_zero(weight: complex) -> bool:
    """Whether a weight should be treated as structural zero."""
    return abs(weight) <= WEIGHT_ZERO_CUTOFF
