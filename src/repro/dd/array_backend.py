"""Pluggable array backends for the arena node store.

The :class:`~repro.dd.arena.NodeArena` keeps the decision diagram in
columnar arrays (levels, edge weights, successor ids).  All array
allocation and math goes through an :class:`ArrayBackend`, so a GPU
backend (CuPy exposes the NumPy API surface) can drop in without
touching :mod:`repro.dd` — register it under a name and select it when
constructing the arena.

Two orthogonal knobs live here:

* the **node-store backend** (``"object"`` heap nodes vs. ``"arena"``
  columnar store), selected per build via
  :attr:`repro.pipeline.PipelineConfig.dd_backend` or the
  ``REPRO_DD_BACKEND`` environment variable, and
* the **array backend** (which array library holds the arena columns),
  selected per :class:`~repro.dd.arena.NodeArena`; only ``"numpy"``
  ships today.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import DecisionDiagramError

__all__ = [
    "DD_BACKENDS",
    "ArrayBackend",
    "NumpyBackend",
    "available_array_backends",
    "default_dd_backend",
    "get_array_backend",
    "register_array_backend",
]

#: Legal node-store backends of :func:`repro.dd.builder.build_dd`.
DD_BACKENDS = ("object", "arena")

#: Environment variable that selects the default node-store backend.
DD_BACKEND_ENV = "REPRO_DD_BACKEND"


def default_dd_backend() -> str:
    """The node-store backend used when a caller does not pick one.

    Reads ``REPRO_DD_BACKEND`` (``"object"`` when unset or empty), so
    a CI job can force the whole suite through either storage path.

    Raises:
        DecisionDiagramError: If the variable names an unknown backend.
    """
    value = os.environ.get(DD_BACKEND_ENV, "").strip().lower()
    if not value:
        return "object"
    if value not in DD_BACKENDS:
        raise DecisionDiagramError(
            f"{DD_BACKEND_ENV}={value!r} is not a node-store backend; "
            f"expected one of {DD_BACKENDS}"
        )
    return value


@runtime_checkable
class ArrayBackend(Protocol):
    """Array library behind a :class:`~repro.dd.arena.NodeArena`.

    Attributes:
        name: Registry name of the backend (``"numpy"``).
        xp: The array namespace (NumPy-compatible: ``empty``,
            ``zeros``, ``rint``, fancy indexing, reductions).
    """

    name: str
    xp: object

    def asarray(self, values, dtype=None):
        """Coerce ``values`` into this backend's array type."""
        ...

    def to_numpy(self, array) -> np.ndarray:
        """Materialise ``array`` on the host as a NumPy array.

        The arena calls this before byte-level operations (unique-table
        keys, serialisation), which must happen in host memory.
        """
        ...


class NumpyBackend:
    """The default (and reference) array backend."""

    name = "numpy"
    xp = np

    def asarray(self, values, dtype=None):
        return np.asarray(values, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def __repr__(self) -> str:
        return "NumpyBackend()"


_ARRAY_BACKENDS: dict[str, ArrayBackend] = {"numpy": NumpyBackend()}


def register_array_backend(backend: ArrayBackend) -> None:
    """Register ``backend`` under ``backend.name``.

    This is the drop-in seam for a CuPy/GPU backend: implement the
    :class:`ArrayBackend` surface over ``cupy`` and register it here;
    every arena constructed with that name then lives on the device.

    Raises:
        DecisionDiagramError: If the backend is missing the protocol
            surface.
    """
    if not isinstance(backend, ArrayBackend) or not isinstance(
        getattr(backend, "name", None), str
    ):
        raise DecisionDiagramError(
            f"{backend!r} does not implement the ArrayBackend protocol "
            "(a 'name' string, an 'xp' namespace, asarray, to_numpy)"
        )
    _ARRAY_BACKENDS[backend.name] = backend


def available_array_backends() -> tuple[str, ...]:
    """Names of the registered array backends."""
    return tuple(sorted(_ARRAY_BACKENDS))


def get_array_backend(backend: str | ArrayBackend | None) -> ArrayBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        DecisionDiagramError: If the name is not registered.
    """
    if backend is None:
        return _ARRAY_BACKENDS["numpy"]
    if isinstance(backend, str):
        found = _ARRAY_BACKENDS.get(backend)
        if found is None:
            raise DecisionDiagramError(
                f"unknown array backend {backend!r}; "
                f"registered: {available_array_backends()}"
            )
        return found
    if not isinstance(backend, ArrayBackend):
        raise DecisionDiagramError(
            f"{backend!r} does not implement the ArrayBackend protocol"
        )
    return backend
