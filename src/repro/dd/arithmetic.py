"""Arithmetic on decision diagrams: inner products and linear combinations.

These operations work directly on the shared graph structure without
expanding to dense vectors.  They power the DD-level circuit simulator
(:mod:`repro.simulator.dd_sim`) and the fidelity estimates of the
approximation module.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.dd.builder import normalize_edges
from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import WEIGHT_ZERO_CUTOFF, Edge
from repro.dd.node import DDNode, TERMINAL
from repro.dd.unique_table import UniqueTable
from repro.exceptions import DecisionDiagramError, DimensionError

__all__ = ["inner_product", "linear_combination", "project"]


def inner_product(bra: DecisionDiagram, ket: DecisionDiagram) -> complex:
    """Return ``<bra|ket>`` without densifying either diagram.

    Recursion over node pairs with memoisation; shared substructure is
    therefore exploited in both operands simultaneously.

    Raises:
        DimensionError: If the diagrams live on different registers.
    """
    if bra.register != ket.register:
        raise DimensionError(
            f"cannot overlap diagrams on registers {bra.dims} and {ket.dims}"
        )
    if bra.root.is_zero or ket.root.is_zero:
        return 0.0

    cache: dict[tuple[int, int], complex] = {}

    def recurse(a: DDNode, b: DDNode) -> complex:
        if a.is_terminal and b.is_terminal:
            return 1.0
        if a.is_terminal or b.is_terminal:
            raise DecisionDiagramError(
                "diagrams of identical registers disagree on depth"
            )
        key = (id(a), id(b))
        cached = cache.get(key)
        if cached is not None:
            return cached
        total = 0.0 + 0.0j
        for edge_a, edge_b in zip(a.edges, b.edges):
            if edge_a.is_zero or edge_b.is_zero:
                continue
            total += (
                edge_a.weight.conjugate()
                * edge_b.weight
                * recurse(edge_a.node, edge_b.node)
            )
        cache[key] = total
        return total

    return (
        bra.root.weight.conjugate()
        * ket.root.weight
        * recurse(bra.root.node, ket.root.node)
    )


def linear_combination(
    terms: Sequence[tuple[complex, Edge]],
    table: UniqueTable,
) -> Edge:
    """Return the canonical edge for ``sum_k coeff_k * |edge_k>``.

    All participating edges must be rooted at the same level (or be
    zero/terminal edges).  The result is renormalised bottom-up, so its
    node satisfies the canonical invariants; the returned edge weight
    carries the norm of the combination.

    Raises:
        DecisionDiagramError: If operand levels disagree.
    """
    live = [
        (coeff * edge.weight, edge.node)
        for coeff, edge in terms
        if abs(coeff * edge.weight) > WEIGHT_ZERO_CUTOFF
    ]
    if not live:
        return Edge.zero()
    if all(node.is_terminal for _, node in live):
        total = sum(weight for weight, _ in live)
        if abs(total) <= WEIGHT_ZERO_CUTOFF:
            return Edge.zero()
        return Edge(total, TERMINAL)
    levels = {node.level for _, node in live if not node.is_terminal}
    if len(levels) != 1 or any(node.is_terminal for _, node in live):
        raise DecisionDiagramError(
            "linear combination operands must share a level"
        )
    level = levels.pop()
    dimension = live[0][1].dimension
    if any(node.dimension != dimension for _, node in live):
        raise DecisionDiagramError(
            "linear combination operands must share a dimension"
        )
    # Single term: no structural work needed.
    if len(live) == 1:
        weight, node = live[0]
        return Edge(weight, node)
    children = []
    for digit in range(dimension):
        children.append(
            linear_combination(
                [
                    (weight, node.successor(digit))
                    for weight, node in live
                ],
                table,
            )
        )
    return normalize_edges(children, table, level)


def project(
    edge: Edge,
    target_level: int,
    digit: int,
    table: UniqueTable,
    current_level: int | None = None,
) -> Edge:
    """Project a sub-diagram onto ``digit`` at ``target_level``.

    Returns the (unnormalised-in-norm, canonical-in-structure) edge for
    the component of the state whose qudit at ``target_level`` reads
    ``digit``; all other branches at that level are zeroed.  The edge
    weight shrinks by the amplitude mass removed, so projections of the
    same edge onto all digits sum back to the original state.
    """
    if edge.is_zero:
        return Edge.zero()
    node = edge.node
    if node.is_terminal:
        raise DecisionDiagramError(
            f"projection level {target_level} below the terminal"
        )
    level = node.level if current_level is None else current_level
    if level == target_level:
        branch = node.successor(digit)
        if branch.is_zero:
            return Edge.zero()
        children = [
            branch if index == digit else Edge.zero()
            for index in range(node.dimension)
        ]
        projected = normalize_edges(children, table, level)
        return projected.scaled(edge.weight)
    children = [
        project(child, target_level, digit, table, level + 1)
        for child in node.edges
    ]
    projected = normalize_edges(children, table, level)
    return projected.scaled(edge.weight)


def norm_of(edge: Edge) -> float:
    """Euclidean norm of the state represented by ``edge``.

    For canonically normalised diagrams this is ``abs(edge.weight)``;
    computed explicitly so it remains correct for intermediate edges.
    """
    if edge.is_zero:
        return 0.0

    cache: dict[int, float] = {}

    def mass(node: DDNode) -> float:
        if node.is_terminal:
            return 1.0
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        total = math.fsum(
            abs(child.weight) ** 2 * mass(child.node)
            for child in node.edges
            if not child.is_zero
        )
        cache[id(node)] = total
        return total

    return abs(edge.weight) * math.sqrt(mass(edge.node))
