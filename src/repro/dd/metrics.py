"""The node-counting metrics reported in Table 1 of the paper.

Reverse-engineering the published numbers (see DESIGN.md, Section 4)
shows that the paper uses two different node counts:

* the **Exact** column reports the size of the full decomposition
  *tree* of the dense vector, including one leaf per amplitude — a
  quantity that depends only on the qudit dimensions
  (:func:`decomposition_tree_size`), and
* the **Approximated** column reports the *visited* tree: non-zero
  subtrees expanded path-wise (shared nodes counted once per path)
  plus one terminal endpoint per out-edge of every visited node
  (:func:`visited_tree_size`).

Both are provided here, together with the path-expanded operation count
(:func:`synthesis_operation_count`) which satisfies
``visited_tree_size == synthesis_operation_count + 1`` — the identity
observable throughout Table 1.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dd.diagram import DecisionDiagram
from repro.dd.node import DDNode
from repro.registers.mixed_radix import validate_dims

__all__ = [
    "decomposition_tree_size",
    "visited_tree_size",
    "synthesis_operation_count",
    "path_expanded_node_count",
]


def decomposition_tree_size(dims: Sequence[int]) -> int:
    """Size of the full decomposition tree, leaves included.

    ``sum_{k=0}^{n} prod_{j<k} d_j``: one root, ``d_0`` level-1 nodes,
    ``d_0*d_1`` level-2 nodes, ..., and ``prod(dims)`` leaves.  This is
    the "Nodes" column of the Exact group in Table 1; for example
    ``decomposition_tree_size((3, 6, 2)) == 58``.
    """
    dims = validate_dims(dims)
    total = 1
    prefix = 1
    for dim in dims:
        prefix *= dim
        total += prefix
    return total


def _arena_metric(dd: DecisionDiagram, kind: str) -> int | None:
    """Level-wise dynamic program over arena columns.

    All three path-expanded metrics share one recurrence shape — a
    per-node value that sums the values of the live (non-zero,
    non-terminal) children plus a per-node term — so they evaluate
    bottom-up as one gather/reduce per level instead of a Python
    recursion.  Returns ``None`` when ``dd`` is not arena-backed.
    """
    program = dd._arena_program()
    if program is None:
        return None
    layers = program["layers"]
    dims = dd.dims
    value = np.zeros(program["num_ids"], dtype=np.int64)
    for level in range(len(layers) - 1, -1, -1):
        ids = layers[level]
        weights, successors = dd._arena_edge_matrix(program, level)
        live = (weights != 0j) & (successors != 0)
        child_sum = np.where(live, value[successors], 0).sum(axis=1)
        dimension = dims[level]
        if kind == "visited":
            value[ids] = (
                1 + (dimension - live.sum(axis=1)) + child_sum
            )
        elif kind == "operations":
            value[ids] = dimension + child_sum
        else:  # "visits"
            value[ids] = 1 + child_sum
    return int(value[program["root_id"]])


def _visited_size_of(node: DDNode, cache: dict[int, int]) -> int:
    """Visited-tree size contributed by ``node`` (path-expanded)."""
    cached = cache.get(id(node))
    if cached is not None:
        return cached
    total = 1  # the node itself
    for edge in node.edges:
        if edge.is_zero or edge.node.is_terminal:
            total += 1  # terminal endpoint of this edge
        else:
            total += _visited_size_of(edge.node, cache)
    cache[id(node)] = total
    return total


def visited_tree_size(dd: DecisionDiagram) -> int:
    """Path-expanded size of the non-zero part of the diagram.

    Counts every internal node once per root-to-node path plus one
    terminal endpoint per out-edge of a visited node.  This is the
    "Nodes" column of the Approximated group in Table 1 and always
    equals ``synthesis_operation_count(dd) + 1``.
    """
    if dd.root.is_zero:
        return 0
    fast = _arena_metric(dd, "visited")
    if fast is not None:
        return fast
    return _visited_size_of(dd.root.node, {})


def _operations_of(node: DDNode, cache: dict[int, int]) -> int:
    """Operations emitted for ``node``'s subtree (path-expanded)."""
    cached = cache.get(id(node))
    if cached is not None:
        return cached
    # Each visited node of dimension d emits (d - 1) Givens rotations
    # plus one phase rotation (identity rotations included), matching
    # the paper's operation counts.
    total = node.dimension
    for edge in node.edges:
        if not edge.is_zero and not edge.node.is_terminal:
            total += _operations_of(edge.node, cache)
    cache[id(node)] = total
    return total


def synthesis_operation_count(dd: DecisionDiagram) -> int:
    """Number of controlled rotations the synthesis will emit.

    Closed-form companion of the synthesis routine: every visited node
    of dimension ``d`` contributes ``d`` operations (``d - 1`` Givens
    plus one phase rotation), summed over the path-expanded non-zero
    tree.  Matches the "Operations" column of Table 1.
    """
    if dd.root.is_zero:
        return 0
    fast = _arena_metric(dd, "operations")
    if fast is not None:
        return fast
    return _operations_of(dd.root.node, {})


def path_expanded_node_count(dd: DecisionDiagram) -> int:
    """Number of internal node visits in the path-expanded tree.

    Shared nodes are counted once per incoming path; terminals are not
    counted.  Useful for quantifying how much sharing the diagram
    achieves versus its tree expansion.
    """
    cache: dict[int, int] = {}

    def visits(node: DDNode) -> int:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        total = 1
        for edge in node.edges:
            if not edge.is_zero and not edge.node.is_terminal:
                total += visits(edge.node)
        cache[id(node)] = total
        return total

    if dd.root.is_zero:
        return 0
    fast = _arena_metric(dd, "visits")
    if fast is not None:
        return fast
    return visits(dd.root.node)
