"""Projective measurement and collapse on decision diagrams.

Complements :mod:`repro.dd.sampling` (which draws whole basis strings):
here a *single* qudit is measured, the outcome is drawn from its
marginal distribution, and the diagram is collapsed (projected and
renormalised) onto the observed level — all without densifying.
"""

from __future__ import annotations

import numpy as np

from repro.dd.arithmetic import norm_of, project
from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import Edge
from repro.dd.observables import level_populations
from repro.exceptions import DecisionDiagramError

__all__ = ["collapse", "measure_qudit"]


def collapse(
    dd: DecisionDiagram, qudit: int, level: int
) -> DecisionDiagram:
    """Project onto ``qudit = level`` and renormalise.

    Returns the post-measurement state as a unit-norm diagram.

    Raises:
        DecisionDiagramError: If the outcome has zero probability or
            the indices are out of range.
    """
    dims = dd.dims
    if not 0 <= qudit < len(dims):
        raise DecisionDiagramError(
            f"qudit {qudit} out of range for {len(dims)} qudits"
        )
    if not 0 <= level < dims[qudit]:
        raise DecisionDiagramError(
            f"level {level} out of range for dimension {dims[qudit]}"
        )
    projected = project(dd.root, qudit, level, dd.unique_table)
    norm = norm_of(projected)
    if norm <= 1e-12:
        raise DecisionDiagramError(
            f"outcome {level} on qudit {qudit} has zero probability"
        )
    renormalised = Edge(projected.weight / norm, projected.node)
    return DecisionDiagram(renormalised, dd.register, dd.unique_table)


def measure_qudit(
    dd: DecisionDiagram,
    qudit: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[int, DecisionDiagram]:
    """Measure one qudit and collapse the diagram.

    Args:
        dd: Unit-norm decision diagram.
        qudit: The qudit to measure.
        rng: Numpy generator or seed.

    Returns:
        ``(outcome, post_measurement_diagram)``; the outcome is drawn
        from the qudit's marginal distribution.
    """
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    probabilities = np.array(level_populations(dd, qudit))
    probabilities = probabilities / probabilities.sum()
    outcome = int(
        generator.choice(len(probabilities), p=probabilities)
    )
    return outcome, collapse(dd, qudit, outcome)
