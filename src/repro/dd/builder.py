"""Construction of decision diagrams from state vectors.

This implements the first step of the paper's pipeline (Section 4.1):
the state vector is split into ``d_k`` equal parts at each level ``k``,
each part becomes a successor, and the edge weights are the
normalisation factors computed bottom-up.  The fixed normalisation
scheme — L2 norm extraction plus making the first non-zero weight real
positive — yields canonical nodes, so the unique table merges all
identical sub-states and the diagram is maximally reduced.

Three construction kernels are provided:

* :func:`build_dd` with ``backend="object"`` — the vectorised
  level-by-level kernel over heap ``DDNode``/``Edge`` objects: the
  amplitude array is reshaped to ``(num_blocks, d_level)``, block
  norms and pivot phases are computed with vectorised NumPy
  reductions, and blocks are deduplicated through quantised-weight
  keys *before* being interned, so the per-node Python cost is paid
  once per distinct node instead of once per tree leaf.
* :func:`build_dd` with ``backend="arena"`` — the same level-wise
  normalisation written directly into a
  :class:`~repro.dd.arena.NodeArena`: nodes are ``int32`` ids in
  columnar arrays, interning is a bytes-key dict probe per row plus
  bulk column appends, and no per-node Python object is allocated at
  build time.  The resulting diagram reads through memoised
  :class:`~repro.dd.arena.NodeView` shims, so the object API keeps
  working.
* :func:`build_dd_reference` — the original per-amplitude recursive
  kernel, kept as the executable specification.  The equivalence tests
  in ``tests/test_hotpaths.py`` and ``tests/test_dd_arena.py`` assert
  that all kernels produce the same diagram (DAG size, root weight,
  per-node weights, amplitudes) on random mixed-radix states.

The object kernels canonicalise every interned edge weight through the
table's shared complex table; the arena kernel instead relies on the
quantised ``(level, weights, successors)`` row keys of the arena's
unique table (same 1e-12 grid) and stores the raw normalised weights.
One caveat, shared by all fast kernels: weights are uniqued at a
tolerance (~1e-12), so for adversarial states whose distinct weights
sit *within the uniquing tolerance of each other*, near-boundary
values may land in different grid cells (or chain to different
canonical representatives) and the diagrams can differ by a node.
Any state whose distinct weights are separated by more than the
tolerance — i.e. everything outside deliberately constructed
collisions — produces identical diagrams (:func:`normalize_edges`
stays as the scalar reference for the normalisation semantics).
"""

from __future__ import annotations

import math

import numpy as np

from repro.dd.arena import NodeArena
from repro.dd.array_backend import DD_BACKENDS, default_dd_backend
from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import WEIGHT_ZERO_CUTOFF, Edge
from repro.dd.node import TERMINAL, DDNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import DecisionDiagramError, StateError
from repro.registers.register import as_register
from repro.states.statevector import StateVector

__all__ = ["build_dd", "build_dd_reference", "normalize_edges"]

_CUTOFF_SQ = WEIGHT_ZERO_CUTOFF * WEIGHT_ZERO_CUTOFF


def normalize_edges(
    raw_edges: list[Edge], table: UniqueTable, level: int
) -> Edge:
    """Intern a node for ``raw_edges`` and return its normalised in-edge.

    The raw edge weights may have any magnitudes; this routine extracts
    the L2 norm ``n`` and the phase ``lam`` of the first non-zero
    weight, divides all weights by ``n * lam`` (making the node
    canonical), and returns an edge with weight ``n * lam`` pointing to
    the interned node.  A list of all-zero edges yields the zero edge.
    """
    norm_sq = math.fsum(abs(edge.weight) ** 2 for edge in raw_edges)
    norm = math.sqrt(norm_sq)
    if norm <= WEIGHT_ZERO_CUTOFF:
        return Edge.zero()
    phase = 1.0 + 0.0j
    for edge in raw_edges:
        if abs(edge.weight) > WEIGHT_ZERO_CUTOFF:
            phase = edge.weight / abs(edge.weight)
            break
    factor = norm * phase
    normalized = [
        Edge(edge.weight / factor, edge.node)
        if abs(edge.weight) > WEIGHT_ZERO_CUTOFF
        else Edge.zero()
        for edge in raw_edges
    ]
    node = table.get_node(level, normalized)
    return Edge(factor, node)


def _normalize_level(
    block: np.ndarray,
    block_ids: np.ndarray,
    magnitude_sq: np.ndarray,
    norms: np.ndarray,
):
    """Vectorised canonical normalisation of one level's live blocks.

    The array program equivalent of :func:`normalize_edges` for a
    ``(num_live, dimension)`` block matrix: extract per-row norms and
    pivot phases, divide, and zero out children below the structural
    cutoff.  Returns ``(factor, normalized, kept_ids, keep)`` where
    ``factor`` is each row's in-edge weight, ``normalized`` the
    canonical weights (exact ``0j`` where dropped), ``kept_ids`` the
    successor ids (0 where dropped) and ``keep`` the survivor mask.
    Shared by the object and arena kernels so the two storage paths
    cannot drift in normalisation semantics.
    """
    # Phase of the first non-zero child, exactly as in normalize_edges
    # (rows whose children are all below the cutoff keep phase 1).
    nonzero_child = magnitude_sq > _CUTOFF_SQ
    first = np.argmax(nonzero_child, axis=1)[:, None]
    has_pivot = np.take_along_axis(nonzero_child, first, axis=1)
    pivot = np.take_along_axis(block, first, axis=1)[:, 0]
    pivot_mag = np.abs(pivot)
    safe_pivot_mag = np.where(pivot_mag > 0.0, pivot_mag, 1.0)
    phase = np.where(has_pivot[:, 0], pivot / safe_pivot_mag, 1.0)
    factor = norms * phase

    # Children are zeroed when the raw weight is below the cutoff
    # (normalize_edges) or the normalised one is (get_node's
    # Edge.zero() canonicalisation).
    normalized = block / factor[:, None]
    keep = nonzero_child & (
        normalized.real**2 + normalized.imag**2 > _CUTOFF_SQ
    )
    normalized = np.where(keep, normalized, 0.0)
    kept_ids = np.where(keep, block_ids, 0)
    return factor, normalized, kept_ids, keep


def build_dd(
    state: StateVector,
    table: UniqueTable | NodeArena | None = None,
    *,
    backend: str | None = None,
    arena: NodeArena | None = None,
) -> DecisionDiagram:
    """Build the canonical decision diagram of a state vector.

    Two storage backends implement the same level-wise vectorised
    construction; see the module docstring for the strategy and
    :func:`build_dd_reference` for the scalar specification both are
    tested against.

    Args:
        state: The state to represent (any norm; the root edge weight
            absorbs the global norm and phase).
        table: Optional node store to intern into — a
            :class:`UniqueTable` (object backend) or a
            :class:`~repro.dd.arena.NodeArena` (arena backend);
            sharing a store across diagrams lets equal sub-states of
            different diagrams share nodes.
        backend: ``"object"`` (heap nodes) or ``"arena"`` (columnar
            store).  ``None`` infers it from ``table``/``arena`` when
            given, else falls back to the ``REPRO_DD_BACKEND``
            environment variable (``"object"`` when unset).
        arena: Explicit arena for the arena backend (alternative to
            passing it as ``table``).

    Returns:
        The decision diagram; ``dd.to_statevector()`` reproduces the
        input amplitudes up to rounding.

    Raises:
        StateError: If the state vector is entirely zero.
        DecisionDiagramError: On an unknown backend or a store that
            does not match the requested backend.
    """
    if isinstance(table, NodeArena) and arena is None:
        table, arena = None, table
    if backend is None:
        if arena is not None:
            backend = "arena"
        elif table is not None:
            backend = "object"
        else:
            backend = default_dd_backend()
    if backend not in DD_BACKENDS:
        raise DecisionDiagramError(
            f"unknown node-store backend {backend!r}; "
            f"expected one of {DD_BACKENDS}"
        )
    if backend == "arena":
        if table is not None:
            raise DecisionDiagramError(
                "the arena backend interns into a NodeArena; "
                "passing a UniqueTable is ambiguous"
            )
        return _build_dd_arena(
            state, arena if arena is not None else NodeArena()
        )
    if arena is not None:
        raise DecisionDiagramError(
            "the object backend interns into a UniqueTable; "
            "passing a NodeArena is ambiguous"
        )
    return _build_dd_object(
        state, table if table is not None else UniqueTable()
    )


def _build_dd_object(
    state: StateVector, table: UniqueTable
) -> DecisionDiagram:
    """The vectorised level-wise kernel over heap node objects."""
    register = as_register(state.register)
    dims = register.dims

    # Upward-flowing per-block edge state: ``weights[b]`` is the edge
    # weight of block ``b`` and ``node_ids[b]`` indexes ``child_nodes``
    # (0 is the terminal; zero-weight blocks always carry id 0).
    weights = np.array(state.amplitudes, dtype=np.complex128, copy=True)
    weights[weights.real**2 + weights.imag**2 <= _CUTOFF_SQ] = 0.0
    node_ids = np.zeros(weights.shape[0], dtype=np.intp)
    child_nodes: list[DDNode] = [TERMINAL]

    complex_table = table.complex_table
    inv_quantum = 1.0 / complex_table.tolerance
    zero_edge = Edge.zero()

    for level in range(len(dims) - 1, -1, -1):
        dimension = dims[level]
        block = weights.reshape(-1, dimension)
        block_ids = node_ids.reshape(-1, dimension)
        num_blocks = block.shape[0]

        magnitude_sq = block.real**2 + block.imag**2
        norms = np.sqrt(magnitude_sq.sum(axis=1))
        live = norms > WEIGHT_ZERO_CUTOFF
        live_rows = np.flatnonzero(live)
        all_live = live_rows.size == num_blocks
        if not all_live:
            block = block[live_rows]
            block_ids = block_ids[live_rows]
            magnitude_sq = magnitude_sq[live_rows]
            norms = norms[live_rows]
        num_live = block.shape[0]

        factor, normalized, kept_ids, keep = _normalize_level(
            block, block_ids, magnitude_sq, norms
        )

        # Canonicalise every kept weight of the level in one batch so
        # the interning loop below can skip the per-edge complex-table
        # probe (zero entries stay exact zeros, as in get_node).
        canon_flat = normalized.ravel()
        kept_positions = np.flatnonzero(keep.ravel())
        canon_flat[kept_positions] = complex_table.lookup_many(
            canon_flat[kept_positions]
        )

        # Quantised-weight block keys: blocks whose weights land on
        # the same complex-table grid cells and share children are
        # interned once; boundary stragglers with differing keys still
        # merge inside the unique table via their canonical weights.
        key_matrix = np.empty((num_live, 3 * dimension), dtype=np.int64)
        key_matrix[:, :dimension] = np.rint(normalized.real * inv_quantum)
        key_matrix[:, dimension:2 * dimension] = np.rint(
            normalized.imag * inv_quantum
        )
        key_matrix[:, 2 * dimension:] = kept_ids
        key_bytes = key_matrix.tobytes()
        row_nbytes = key_matrix.shape[1] * key_matrix.itemsize

        # A dropped child has an exact-zero canonical weight, so the
        # weight row alone distinguishes kept from zero edges.
        weight_rows = normalized.tolist()
        id_rows = kept_ids.tolist()
        new_nodes: list[DDNode] = [TERMINAL]
        row_node_ids: list[int] = []
        append_node_id = row_node_ids.append
        interned: dict[bytes, int] = {}
        interned_get = interned.get
        get_node_canonical = table.get_node_canonical
        make_edge = Edge
        children = child_nodes
        zero = 0j
        digits = range(dimension)
        position = 0
        for index in range(num_live):
            key = key_bytes[position:position + row_nbytes]
            position += row_nbytes
            node_id = interned_get(key)
            if node_id is None:
                weight_row = weight_rows[index]
                id_row = id_rows[index]
                edges = [
                    make_edge(weight_row[digit], children[id_row[digit]])
                    if weight_row[digit] != zero
                    else zero_edge
                    for digit in digits
                ]
                new_nodes.append(get_node_canonical(level, edges))
                node_id = len(new_nodes) - 1
                interned[key] = node_id
            append_node_id(node_id)

        if all_live:
            weights = factor
            node_ids = np.asarray(row_node_ids, dtype=np.intp)
        else:
            weights = np.zeros(num_blocks, dtype=np.complex128)
            weights[live_rows] = factor
            node_ids = np.zeros(num_blocks, dtype=np.intp)
            node_ids[live_rows] = row_node_ids
        child_nodes = new_nodes

    root_weight = complex(weights[0])
    if abs(root_weight) <= WEIGHT_ZERO_CUTOFF:
        raise StateError("cannot build a decision diagram of the zero state")
    root = Edge(root_weight, child_nodes[node_ids[0]])
    return DecisionDiagram(root, register, table)


def _build_dd_arena(
    state: StateVector, arena: NodeArena
) -> DecisionDiagram:
    """The level-wise kernel writing directly into a node arena.

    Identical normalisation flow to the object kernel (shared through
    :func:`_normalize_level`), but the per-level interning is
    :meth:`~repro.dd.arena.NodeArena.intern_level` — a bytes-key dict
    probe per row plus bulk column appends — so no ``DDNode``/``Edge``
    object and no complex-table probe happens during construction.
    """
    register = as_register(state.register)
    dims = register.dims

    weights = np.array(state.amplitudes, dtype=np.complex128, copy=True)
    weights[weights.real**2 + weights.imag**2 <= _CUTOFF_SQ] = 0.0
    node_ids = np.zeros(weights.shape[0], dtype=np.int32)

    for level in range(len(dims) - 1, -1, -1):
        dimension = dims[level]
        block = weights.reshape(-1, dimension)
        block_ids = node_ids.reshape(-1, dimension)
        num_blocks = block.shape[0]

        magnitude_sq = block.real**2 + block.imag**2
        norms = np.sqrt(magnitude_sq.sum(axis=1))
        live = norms > WEIGHT_ZERO_CUTOFF
        live_rows = np.flatnonzero(live)
        all_live = live_rows.size == num_blocks
        if not all_live:
            block = block[live_rows]
            block_ids = block_ids[live_rows]
            magnitude_sq = magnitude_sq[live_rows]
            norms = norms[live_rows]

        factor, normalized, kept_ids, _ = _normalize_level(
            block, block_ids, magnitude_sq, norms
        )
        ids = arena.intern_level(level, normalized, kept_ids)

        if all_live:
            weights = factor
            node_ids = ids
        else:
            weights = np.zeros(num_blocks, dtype=np.complex128)
            weights[live_rows] = factor
            node_ids = np.zeros(num_blocks, dtype=np.int32)
            node_ids[live_rows] = ids

    root_weight = complex(weights[0])
    if abs(root_weight) <= WEIGHT_ZERO_CUTOFF:
        raise StateError("cannot build a decision diagram of the zero state")
    root = Edge(root_weight, arena.view(int(node_ids[0])))
    return DecisionDiagram(root, register, arena)


def build_dd_reference(
    state: StateVector,
    table: UniqueTable | None = None,
) -> DecisionDiagram:
    """Scalar recursive reference kernel for :func:`build_dd`.

    Splits the amplitude array top-down, one Python call per tree node,
    normalising each node through :func:`normalize_edges`.  Retained as
    the executable specification the vectorised kernels are benchmarked
    and property-tested against; prefer :func:`build_dd` everywhere
    else.
    """
    if table is None:
        table = UniqueTable()
    register = as_register(state.register)
    dims = register.dims
    amplitudes = np.ascontiguousarray(state.amplitudes)

    def build(offset: int, length: int, level: int) -> Edge:
        """Build the edge for ``amplitudes[offset : offset + length]``."""
        if level == len(dims):
            weight = complex(amplitudes[offset])
            if abs(weight) <= WEIGHT_ZERO_CUTOFF:
                return Edge.zero()
            return Edge(weight, TERMINAL)
        dimension = dims[level]
        part = length // dimension
        children = [
            build(offset + digit * part, part, level + 1)
            for digit in range(dimension)
        ]
        return normalize_edges(children, table, level)

    root = build(0, register.size, 0)
    if root.is_zero:
        raise StateError("cannot build a decision diagram of the zero state")
    return DecisionDiagram(root, register, table)
