"""Construction of decision diagrams from state vectors.

This implements the first step of the paper's pipeline (Section 4.1):
the state vector is recursively split into ``d_k`` equal parts at each
level ``k``, each part becomes a successor, and the edge weights are
the normalisation factors computed bottom-up.  The fixed normalisation
scheme — L2 norm extraction plus making the first non-zero weight real
positive — yields canonical nodes, so the unique table merges all
identical sub-states and the diagram is maximally reduced.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import WEIGHT_ZERO_CUTOFF, Edge
from repro.dd.node import TERMINAL
from repro.dd.unique_table import UniqueTable
from repro.exceptions import StateError
from repro.registers.register import as_register
from repro.states.statevector import StateVector

__all__ = ["build_dd", "normalize_edges"]


def normalize_edges(
    raw_edges: list[Edge], table: UniqueTable, level: int
) -> Edge:
    """Intern a node for ``raw_edges`` and return its normalised in-edge.

    The raw edge weights may have any magnitudes; this routine extracts
    the L2 norm ``n`` and the phase ``lam`` of the first non-zero
    weight, divides all weights by ``n * lam`` (making the node
    canonical), and returns an edge with weight ``n * lam`` pointing to
    the interned node.  A list of all-zero edges yields the zero edge.
    """
    norm_sq = math.fsum(abs(edge.weight) ** 2 for edge in raw_edges)
    norm = math.sqrt(norm_sq)
    if norm <= WEIGHT_ZERO_CUTOFF:
        return Edge.zero()
    phase = 1.0 + 0.0j
    for edge in raw_edges:
        if abs(edge.weight) > WEIGHT_ZERO_CUTOFF:
            phase = edge.weight / abs(edge.weight)
            break
    factor = norm * phase
    normalized = [
        Edge(edge.weight / factor, edge.node)
        if abs(edge.weight) > WEIGHT_ZERO_CUTOFF
        else Edge.zero()
        for edge in raw_edges
    ]
    node = table.get_node(level, normalized)
    return Edge(factor, node)


def build_dd(
    state: StateVector,
    table: UniqueTable | None = None,
) -> DecisionDiagram:
    """Build the canonical decision diagram of a state vector.

    Args:
        state: The state to represent (any norm; the root edge weight
            absorbs the global norm and phase).
        table: Optional unique table to intern nodes into; sharing a
            table across diagrams lets equal sub-states of different
            diagrams share nodes.

    Returns:
        The decision diagram; ``dd.to_statevector()`` reproduces the
        input amplitudes up to rounding.

    Raises:
        StateError: If the state vector is entirely zero.
    """
    if table is None:
        table = UniqueTable()
    register = as_register(state.register)
    dims = register.dims
    amplitudes = np.ascontiguousarray(state.amplitudes)

    def build(offset: int, length: int, level: int) -> Edge:
        """Build the edge for ``amplitudes[offset : offset + length]``."""
        if level == len(dims):
            weight = complex(amplitudes[offset])
            if abs(weight) <= WEIGHT_ZERO_CUTOFF:
                return Edge.zero()
            return Edge(weight, TERMINAL)
        dimension = dims[level]
        part = length // dimension
        children = [
            build(offset + digit * part, part, level + 1)
            for digit in range(dimension)
        ]
        return normalize_edges(children, table, level)

    root = build(0, register.size, 0)
    if root.is_zero:
        raise StateError("cannot build a decision diagram of the zero state")
    return DecisionDiagram(root, register, table)
