"""Construction of decision diagrams from state vectors.

This implements the first step of the paper's pipeline (Section 4.1):
the state vector is split into ``d_k`` equal parts at each level ``k``,
each part becomes a successor, and the edge weights are the
normalisation factors computed bottom-up.  The fixed normalisation
scheme — L2 norm extraction plus making the first non-zero weight real
positive — yields canonical nodes, so the unique table merges all
identical sub-states and the diagram is maximally reduced.

Two construction kernels are provided:

* :func:`build_dd` — the production kernel.  It runs one iterative,
  level-by-level bottom-up pass: the amplitude array is reshaped to
  ``(num_blocks, d_level)``, block norms and pivot phases are computed
  with vectorised NumPy reductions, and blocks are deduplicated through
  quantised-weight keys *before* being interned, so the per-node Python
  cost is paid once per distinct node instead of once per tree leaf.
* :func:`build_dd_reference` — the original per-amplitude recursive
  kernel, kept as the executable specification.  The equivalence tests
  in ``tests/test_hotpaths.py`` assert that both kernels produce the
  same diagram (DAG size, root weight, amplitudes) on random
  mixed-radix states.

Both kernels canonicalise every interned edge weight through the
table's shared complex table, so the quantised-key deduplication is
purely an optimisation (:func:`normalize_edges` stays as the scalar
reference for the normalisation semantics).  One caveat: the kernels
insert weights into the complex table in different orders (level-major
vs. depth-first), so for adversarial states whose distinct weights sit
*within the uniquing tolerance of each other* (~1e-12), near-boundary
values may chain to different canonical representatives and the two
diagrams can differ by a node.  Any state whose distinct weights are
separated by more than the tolerance — i.e. everything outside
deliberately constructed collisions — produces identical diagrams.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dd.diagram import DecisionDiagram
from repro.dd.edge import WEIGHT_ZERO_CUTOFF, Edge
from repro.dd.node import TERMINAL, DDNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import StateError
from repro.registers.register import as_register
from repro.states.statevector import StateVector

__all__ = ["build_dd", "build_dd_reference", "normalize_edges"]


def normalize_edges(
    raw_edges: list[Edge], table: UniqueTable, level: int
) -> Edge:
    """Intern a node for ``raw_edges`` and return its normalised in-edge.

    The raw edge weights may have any magnitudes; this routine extracts
    the L2 norm ``n`` and the phase ``lam`` of the first non-zero
    weight, divides all weights by ``n * lam`` (making the node
    canonical), and returns an edge with weight ``n * lam`` pointing to
    the interned node.  A list of all-zero edges yields the zero edge.
    """
    norm_sq = math.fsum(abs(edge.weight) ** 2 for edge in raw_edges)
    norm = math.sqrt(norm_sq)
    if norm <= WEIGHT_ZERO_CUTOFF:
        return Edge.zero()
    phase = 1.0 + 0.0j
    for edge in raw_edges:
        if abs(edge.weight) > WEIGHT_ZERO_CUTOFF:
            phase = edge.weight / abs(edge.weight)
            break
    factor = norm * phase
    normalized = [
        Edge(edge.weight / factor, edge.node)
        if abs(edge.weight) > WEIGHT_ZERO_CUTOFF
        else Edge.zero()
        for edge in raw_edges
    ]
    node = table.get_node(level, normalized)
    return Edge(factor, node)


def build_dd(
    state: StateVector,
    table: UniqueTable | None = None,
) -> DecisionDiagram:
    """Build the canonical decision diagram of a state vector.

    This is the vectorised level-wise kernel; see the module docstring
    for the construction strategy and :func:`build_dd_reference` for
    the scalar specification it is tested against.

    Args:
        state: The state to represent (any norm; the root edge weight
            absorbs the global norm and phase).
        table: Optional unique table to intern nodes into; sharing a
            table across diagrams lets equal sub-states of different
            diagrams share nodes.

    Returns:
        The decision diagram; ``dd.to_statevector()`` reproduces the
        input amplitudes up to rounding.

    Raises:
        StateError: If the state vector is entirely zero.
    """
    if table is None:
        table = UniqueTable()
    register = as_register(state.register)
    dims = register.dims
    cutoff_sq = WEIGHT_ZERO_CUTOFF * WEIGHT_ZERO_CUTOFF

    # Upward-flowing per-block edge state: ``weights[b]`` is the edge
    # weight of block ``b`` and ``node_ids[b]`` indexes ``child_nodes``
    # (0 is the terminal; zero-weight blocks always carry id 0).
    weights = np.array(state.amplitudes, dtype=np.complex128, copy=True)
    weights[weights.real**2 + weights.imag**2 <= cutoff_sq] = 0.0
    node_ids = np.zeros(weights.shape[0], dtype=np.intp)
    child_nodes: list[DDNode] = [TERMINAL]

    complex_table = table.complex_table
    inv_quantum = 1.0 / complex_table.tolerance
    zero_edge = Edge.zero()

    for level in range(len(dims) - 1, -1, -1):
        dimension = dims[level]
        block = weights.reshape(-1, dimension)
        block_ids = node_ids.reshape(-1, dimension)
        num_blocks = block.shape[0]

        magnitude_sq = block.real**2 + block.imag**2
        norms = np.sqrt(magnitude_sq.sum(axis=1))
        live = norms > WEIGHT_ZERO_CUTOFF
        live_rows = np.flatnonzero(live)
        all_live = live_rows.size == num_blocks
        if not all_live:
            block = block[live_rows]
            block_ids = block_ids[live_rows]
            magnitude_sq = magnitude_sq[live_rows]
            norms = norms[live_rows]
        num_live = block.shape[0]

        # Phase of the first non-zero child, exactly as in
        # normalize_edges (rows whose children are all below the
        # cutoff keep phase 1).
        nonzero_child = magnitude_sq > cutoff_sq
        first = np.argmax(nonzero_child, axis=1)[:, None]
        has_pivot = np.take_along_axis(nonzero_child, first, axis=1)
        pivot = np.take_along_axis(block, first, axis=1)[:, 0]
        pivot_mag = np.abs(pivot)
        safe_pivot_mag = np.where(pivot_mag > 0.0, pivot_mag, 1.0)
        phase = np.where(
            has_pivot[:, 0], pivot / safe_pivot_mag, 1.0
        )
        factor = norms * phase

        # Children are zeroed when the raw weight is below the cutoff
        # (normalize_edges) or the normalised one is (get_node's
        # Edge.zero() canonicalisation).
        normalized = block / factor[:, None]
        keep = nonzero_child & (
            normalized.real**2 + normalized.imag**2 > cutoff_sq
        )
        normalized = np.where(keep, normalized, 0.0)
        kept_ids = np.where(keep, block_ids, 0)

        # Canonicalise every kept weight of the level in one batch so
        # the interning loop below can skip the per-edge complex-table
        # probe (zero entries stay exact zeros, as in get_node).
        canon_flat = normalized.ravel()
        kept_positions = np.flatnonzero(keep.ravel())
        canon_flat[kept_positions] = complex_table.lookup_many(
            canon_flat[kept_positions]
        )

        # Quantised-weight block keys: blocks whose weights land on
        # the same complex-table grid cells and share children are
        # interned once; boundary stragglers with differing keys still
        # merge inside the unique table via their canonical weights.
        key_matrix = np.empty((num_live, 3 * dimension), dtype=np.int64)
        key_matrix[:, :dimension] = np.rint(normalized.real * inv_quantum)
        key_matrix[:, dimension:2 * dimension] = np.rint(
            normalized.imag * inv_quantum
        )
        key_matrix[:, 2 * dimension:] = kept_ids
        key_bytes = key_matrix.tobytes()
        row_nbytes = key_matrix.shape[1] * key_matrix.itemsize

        # A dropped child has an exact-zero canonical weight, so the
        # weight row alone distinguishes kept from zero edges.
        weight_rows = normalized.tolist()
        id_rows = kept_ids.tolist()
        new_nodes: list[DDNode] = [TERMINAL]
        row_node_ids: list[int] = []
        append_node_id = row_node_ids.append
        interned: dict[bytes, int] = {}
        interned_get = interned.get
        get_node_canonical = table.get_node_canonical
        make_edge = Edge
        children = child_nodes
        zero = 0j
        digits = range(dimension)
        position = 0
        for index in range(num_live):
            key = key_bytes[position:position + row_nbytes]
            position += row_nbytes
            node_id = interned_get(key)
            if node_id is None:
                weight_row = weight_rows[index]
                id_row = id_rows[index]
                edges = [
                    make_edge(weight_row[digit], children[id_row[digit]])
                    if weight_row[digit] != zero
                    else zero_edge
                    for digit in digits
                ]
                new_nodes.append(get_node_canonical(level, edges))
                node_id = len(new_nodes) - 1
                interned[key] = node_id
            append_node_id(node_id)

        if all_live:
            weights = factor
            node_ids = np.asarray(row_node_ids, dtype=np.intp)
        else:
            weights = np.zeros(num_blocks, dtype=np.complex128)
            weights[live_rows] = factor
            node_ids = np.zeros(num_blocks, dtype=np.intp)
            node_ids[live_rows] = row_node_ids
        child_nodes = new_nodes

    root_weight = complex(weights[0])
    if abs(root_weight) <= WEIGHT_ZERO_CUTOFF:
        raise StateError("cannot build a decision diagram of the zero state")
    root = Edge(root_weight, child_nodes[node_ids[0]])
    return DecisionDiagram(root, register, table)


def build_dd_reference(
    state: StateVector,
    table: UniqueTable | None = None,
) -> DecisionDiagram:
    """Scalar recursive reference kernel for :func:`build_dd`.

    Splits the amplitude array top-down, one Python call per tree node,
    normalising each node through :func:`normalize_edges`.  Retained as
    the executable specification the vectorised kernel is benchmarked
    and property-tested against; prefer :func:`build_dd` everywhere
    else.
    """
    if table is None:
        table = UniqueTable()
    register = as_register(state.register)
    dims = register.dims
    amplitudes = np.ascontiguousarray(state.amplitudes)

    def build(offset: int, length: int, level: int) -> Edge:
        """Build the edge for ``amplitudes[offset : offset + length]``."""
        if level == len(dims):
            weight = complex(amplitudes[offset])
            if abs(weight) <= WEIGHT_ZERO_CUTOFF:
                return Edge.zero()
            return Edge(weight, TERMINAL)
        dimension = dims[level]
        part = length // dimension
        children = [
            build(offset + digit * part, part, level + 1)
            for digit in range(dimension)
        ]
        return normalize_edges(children, table, level)

    root = build(0, register.size, 0)
    if root.is_zero:
        raise StateError("cannot build a decision diagram of the zero state")
    return DecisionDiagram(root, register, table)
