"""Expectation values of diagonal observables, computed on the DD.

Many quantities of interest after state preparation — excitation
numbers, Hamming weights, local level populations, Ising-type
energies over computational-basis diagonals — are diagonal in the
computational basis.  For a decision diagram these expectations are
computable in ``O(nodes * max_dim)`` without densifying, by the same
downward-mass recursion the approximation module uses.

Supported observable forms:

* **local sums** ``O = sum_q h_q(level_q)`` —
  :func:`expectation_local_sum`;
* **level populations** ``P(qudit q is at level l)`` —
  :func:`level_populations`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dd.diagram import DecisionDiagram
from repro.dd.node import DDNode
from repro.exceptions import DecisionDiagramError

__all__ = ["expectation_local_sum", "level_populations"]


def expectation_local_sum(
    dd: DecisionDiagram,
    local_terms: Sequence[Sequence[float]],
) -> float:
    """Expectation of ``sum_q h_q(level_q)`` on a unit-norm diagram.

    Args:
        dd: Canonical decision diagram of a normalised state.
        local_terms: One sequence per qudit; ``local_terms[q][l]`` is
            the value ``h_q`` assigns to level ``l`` of qudit ``q``.

    Returns:
        ``<psi| sum_q diag(h_q) |psi>`` as a float.

    Raises:
        DecisionDiagramError: If the shapes do not match the register.
    """
    dims = dd.dims
    if len(local_terms) != len(dims):
        raise DecisionDiagramError(
            f"expected {len(dims)} local terms, got {len(local_terms)}"
        )
    for qudit, term in enumerate(local_terms):
        if len(term) != dims[qudit]:
            raise DecisionDiagramError(
                f"local term {qudit} must have {dims[qudit]} entries, "
                f"got {len(term)}"
            )
    if dd.root.is_zero:
        return 0.0

    # E(node) = sum_l |w_l|^2 (h(l) + E(child_l)); terminal E = 0.
    # Canonical nodes have unit mass, so no mass factors are needed.
    cache: dict[int, float] = {}

    def expectation(node: DDNode) -> float:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        term = local_terms[node.level]
        total = 0.0
        for level, edge in node.nonzero_edges():
            magnitude = abs(edge.weight) ** 2
            child_part = (
                0.0
                if edge.node.is_terminal
                else expectation(edge.node)
            )
            total += magnitude * (term[level] + child_part)
        cache[id(node)] = total
        return total

    return abs(dd.root.weight) ** 2 * expectation(dd.root.node)


def level_populations(
    dd: DecisionDiagram, qudit: int
) -> list[float]:
    """Marginal probabilities of each level of one qudit.

    Equivalent to measuring ``qudit`` and discarding the rest, but
    computed by a single indicator-observable recursion per level.

    Raises:
        DecisionDiagramError: If ``qudit`` is out of range.
    """
    dims = dd.dims
    if not 0 <= qudit < len(dims):
        raise DecisionDiagramError(
            f"qudit {qudit} out of range for {len(dims)} qudits"
        )
    populations = []
    for target_level in range(dims[qudit]):
        local_terms: list[list[float]] = [
            [0.0] * dim for dim in dims
        ]
        local_terms[qudit][target_level] = 1.0
        populations.append(expectation_local_sum(dd, local_terms))
    return populations
