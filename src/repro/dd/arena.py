"""The structure-of-arrays node store ("arena") for decision diagrams.

A :class:`NodeArena` replaces per-node Python ``DDNode``/``Edge``
objects with columnar arrays: a node is an ``int32`` id, and the DAG
lives in

* per-node columns — ``level`` (``int32``), edge ``offset``
  (``int64``) and edge ``count`` (``int32``), and
* per-edge columns — complex ``weights`` (``complex128``) and
  ``successors`` (``int32`` node ids; 0 is the terminal).

Id 0 is the shared terminal (level -1, no edges).  The unique table is
a dict keyed on quantised ``(level, weights, successors)`` rows —
weights snapped to the complex-table grid (tolerance 1e-12 by default)
and packed with the successor ids into one ``int64`` row whose raw
bytes are the key — instead of object identity, so equal sub-states
interned level-wise merge without allocating a node object per tree
block.  Columns double in capacity as the arena grows; growth copies
the data, so outstanding :class:`NodeView` objects (which read through
the arena, never into a stale buffer) stay valid.

:class:`NodeView` is the thin object shim: it mirrors the
:class:`~repro.dd.node.DDNode` read API (``level``, ``edges``,
``weights``, ``nonzero_edges`` ...) and is memoised per id, so
identity-keyed caches and ``is`` comparisons in the existing traversal
code (synthesis, approximation, dot/io export) work unchanged on
arena-backed diagrams.

All array storage and math goes through an
:class:`~repro.dd.array_backend.ArrayBackend` (NumPy by default), the
drop-in seam for a future CuPy/GPU backend.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.dd.array_backend import ArrayBackend, get_array_backend
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL
from repro.exceptions import DecisionDiagramError

__all__ = ["ArenaStats", "NodeArena", "NodeView"]

#: Default uniquing tolerance of the quantised weight grid; matches
#: :data:`repro.linalg.complex_table.DEFAULT_TOLERANCE`.
DEFAULT_TOLERANCE = 1e-12


@dataclass(frozen=True)
class ArenaStats:
    """Storage accounting of one :class:`NodeArena`.

    Attributes:
        num_nodes: Interned non-terminal nodes.
        num_edges: Stored edges (including structural-zero slots).
        nbytes: Currently allocated column bytes.
        peak_bytes: High-water mark of ``nbytes`` over the arena's
            lifetime (capacity doubling never shrinks, so this is the
            real footprint of the build).
        bytes_per_node: ``peak_bytes / num_nodes`` (0.0 when empty).
    """

    num_nodes: int
    num_edges: int
    nbytes: int
    peak_bytes: int
    bytes_per_node: float


def _restore_view(arena: "NodeArena", node_id: int) -> "NodeView":
    """Pickle hook: re-enter the arena's view memo (keeps identity)."""
    return arena.view(node_id)


class NodeView:
    """A :class:`~repro.dd.node.DDNode`-shaped window onto one arena id.

    Views are memoised per ``(arena, id)`` — obtain them through
    :meth:`NodeArena.view`, never by constructing directly — so
    ``id(view)`` / ``is`` comparisons double as node identity exactly
    as interned ``DDNode`` objects do.  The edge tuple is materialised
    lazily on first access and cached (nodes are immutable once
    interned); zero edges reuse the shared terminal, and non-zero
    terminal edges point at the global :data:`~repro.dd.node.TERMINAL`
    for maximum compatibility with object-path code.
    """

    __slots__ = ("arena", "node_id", "_edges", "__weakref__")

    def __init__(self, arena: "NodeArena", node_id: int):
        self.arena = arena
        self.node_id = node_id
        self._edges: tuple[Edge, ...] | None = None

    # ------------------------------------------------------------------
    # Structure (the DDNode read API)
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return int(self.arena._levels[self.node_id])

    @property
    def is_terminal(self) -> bool:
        return self.node_id == 0

    @property
    def dimension(self) -> int:
        return int(self.arena._counts[self.node_id])

    @property
    def edges(self) -> tuple[Edge, ...]:
        edges = self._edges
        if edges is None:
            arena = self.arena
            weights, successors = arena._edge_rows(self.node_id)
            zero = arena._zero_edge
            edges = tuple(
                zero
                if weight == 0j
                else Edge(
                    weight,
                    TERMINAL if successor == 0 else arena.view(successor),
                )
                for weight, successor in zip(weights, successors)
            )
            self._edges = edges
        return edges

    @property
    def weights(self) -> tuple[complex, ...]:
        return tuple(edge.weight for edge in self.edges)

    def successor(self, level_value: int) -> Edge:
        return self.edges[level_value]

    def nonzero_edges(self) -> Iterator[tuple[int, Edge]]:
        for digit, edge in enumerate(self.edges):
            if not edge.is_zero:
                yield digit, edge

    def num_nonzero_edges(self) -> int:
        return sum(1 for _ in self.nonzero_edges())

    def unique_nonzero_child(self):
        """Mirror of :meth:`repro.dd.node.DDNode.unique_nonzero_child`."""
        child = None
        for _, edge in self.nonzero_edges():
            if child is None:
                child = edge.node
            elif child is not edge.node:
                return None
        return child

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_invariants(self, tolerance: float = 1e-9) -> None:
        """Assert the canonical normalisation invariants.

        Raises:
            DecisionDiagramError: If an invariant is violated.
        """
        if self.is_terminal:
            return
        total = math.fsum(abs(w) ** 2 for w in self.weights)
        if abs(total - 1.0) > tolerance:
            raise DecisionDiagramError(
                f"node at level {self.level}: squared weights sum to "
                f"{total}, expected 1"
            )
        for digit, edge in enumerate(self.edges):
            if edge.is_zero and not edge.node.is_terminal:
                raise DecisionDiagramError(
                    f"zero edge {digit} at level {self.level} does not "
                    "point to the terminal"
                )
        for _, edge in self.nonzero_edges():
            first = edge.weight
            if abs(first.imag) > tolerance or first.real <= 0:
                raise DecisionDiagramError(
                    f"first non-zero weight {first} at level "
                    f"{self.level} is not real positive"
                )
            break

    def __reduce__(self):
        return (_restore_view, (self.arena, self.node_id))

    def __repr__(self) -> str:
        if self.is_terminal:
            return "NodeView(TERMINAL)"
        return (
            f"NodeView(id={self.node_id}, level={self.level}, "
            f"dimension={self.dimension})"
        )


class NodeArena:
    """Columnar storage plus quantised-row unique table for DD nodes.

    Args:
        tolerance: Uniquing grid of the weight quantisation.  Two
            interned rows merge when every weight lands on the same
            grid cell and the successors match; matches the
            complex-table tolerance of the object path.
        array_backend: An :class:`~repro.dd.array_backend.ArrayBackend`
            or registry name (``"numpy"``).
        initial_nodes: Starting node-column capacity (grows by
            doubling).
        initial_edges: Starting edge-column capacity (grows by
            doubling).

    One arena can be shared across diagrams — like a
    :class:`~repro.dd.unique_table.UniqueTable` — so equal sub-states
    of different states share ids.  Arenas are picklable; the pickled
    form ships the trimmed columns only (ids + columns, no per-node
    objects) and rebuilds the unique-table dict lazily on the first
    intern after unpickling.
    """

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        array_backend: str | ArrayBackend | None = None,
        initial_nodes: int = 256,
        initial_edges: int = 1024,
    ):
        if tolerance <= 0:
            raise DecisionDiagramError(
                f"tolerance must be positive, got {tolerance}"
            )
        self._tolerance = float(tolerance)
        self._inv_tolerance = 1.0 / self._tolerance
        self._backend = get_array_backend(array_backend)
        xp = self._backend.xp
        node_capacity = max(int(initial_nodes), 1)
        edge_capacity = max(int(initial_edges), 1)
        self._levels = xp.empty(node_capacity, dtype=np.int32)
        self._offsets = xp.zeros(node_capacity, dtype=np.int64)
        self._counts = xp.zeros(node_capacity, dtype=np.int32)
        self._weights = xp.empty(edge_capacity, dtype=np.complex128)
        self._successors = xp.empty(edge_capacity, dtype=np.int32)
        self._levels[0] = -1  # id 0 is the terminal
        self._num_nodes = 1
        self._num_edges = 0
        self._index: dict[bytes, int] | None = {}
        self._views: dict[int, NodeView] = {}
        self._zero_edge = Edge.zero()
        self._peak_bytes = 0
        self._note_allocation()

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _note_allocation(self) -> None:
        self._peak_bytes = max(self._peak_bytes, self.nbytes)

    def _grow(self, array, needed: int, fill=None):
        capacity = array.shape[0]
        while capacity < needed:
            capacity *= 2
        xp = self._backend.xp
        if fill is None:
            grown = xp.empty(capacity, dtype=array.dtype)
        else:
            grown = xp.full(capacity, fill, dtype=array.dtype)
        grown[: array.shape[0]] = array
        return grown

    def _reserve(self, new_nodes: int, new_edges: int) -> None:
        nodes_needed = self._num_nodes + new_nodes
        if nodes_needed > self._levels.shape[0]:
            self._levels = self._grow(self._levels, nodes_needed)
            self._offsets = self._grow(self._offsets, nodes_needed, fill=0)
            self._counts = self._grow(self._counts, nodes_needed, fill=0)
        edges_needed = self._num_edges + new_edges
        if edges_needed > self._weights.shape[0]:
            self._weights = self._grow(self._weights, edges_needed)
            self._successors = self._grow(self._successors, edges_needed)
        self._note_allocation()

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _key_matrix(self, level, weights, successors) -> np.ndarray:
        """Quantised ``(level, weights, successors)`` key rows.

        One ``int64`` row per node: the level, the real and imaginary
        parts snapped to the tolerance grid, then the successor ids.
        The raw row bytes are the unique-table keys.
        """
        weights = self._backend.to_numpy(weights)
        successors = self._backend.to_numpy(successors)
        rows, dimension = weights.shape
        key = np.empty((rows, 3 * dimension + 1), dtype=np.int64)
        key[:, 0] = level
        key[:, 1 : dimension + 1] = np.rint(
            weights.real * self._inv_tolerance
        )
        key[:, dimension + 1 : 2 * dimension + 1] = np.rint(
            weights.imag * self._inv_tolerance
        )
        key[:, 2 * dimension + 1 :] = successors
        return key

    def _ensure_index(self) -> dict[bytes, int]:
        """The unique-table dict, rebuilt from the columns if needed.

        Unpickling drops the dict (the columns alone determine it:
        stored weights are the exact values that were quantised at
        intern time, so re-quantising reproduces the same keys) and
        this rebuilds it on the next intern.
        """
        index = self._index
        if index is not None:
            return index
        index = {}
        counts = self._backend.to_numpy(self._counts[: self._num_nodes])
        levels = self._backend.to_numpy(self._levels[: self._num_nodes])
        offsets = self._backend.to_numpy(self._offsets[: self._num_nodes])
        ids = np.arange(self._num_nodes)
        for dimension in np.unique(counts[1:]).tolist():
            selected = ids[1:][counts[1:] == dimension]
            gather = offsets[selected][:, None] + np.arange(dimension)
            key = np.empty(
                (selected.size, 3 * dimension + 1), dtype=np.int64
            )
            key[:, 0] = levels[selected]
            weights = self._backend.to_numpy(self._weights)[gather]
            key[:, 1 : dimension + 1] = np.rint(
                weights.real * self._inv_tolerance
            )
            key[:, dimension + 1 : 2 * dimension + 1] = np.rint(
                weights.imag * self._inv_tolerance
            )
            key[:, 2 * dimension + 1 :] = self._backend.to_numpy(
                self._successors
            )[gather]
            row_nbytes = key.shape[1] * key.itemsize
            key_bytes = key.tobytes()
            position = 0
            for node_id in selected.tolist():
                index[key_bytes[position : position + row_nbytes]] = (
                    node_id
                )
                position += row_nbytes
        self._index = index
        return index

    def intern_level(self, level: int, weights, successors) -> np.ndarray:
        """Intern one level's node rows in bulk; return their ids.

        Args:
            level: Level of every row.
            weights: ``(rows, dimension)`` complex weights, already
                canonically normalised; structural zeros must be exact
                ``0j``.
            successors: ``(rows, dimension)`` successor ids (0 where
                the weight is zero or the child is the terminal).

        Returns:
            ``int32`` array of ``rows`` node ids.  Duplicate rows —
            within the batch or against previously interned nodes —
            receive the same id; only fresh rows are appended to the
            columns (bulk copies, no per-node Python allocation).
        """
        xp = self._backend.xp
        weights = xp.asarray(weights, dtype=np.complex128)
        successors = xp.asarray(successors, dtype=np.int32)
        if weights.shape != successors.shape or weights.ndim != 2:
            raise DecisionDiagramError(
                "intern_level needs matching (rows, dimension) weight "
                f"and successor matrices, got {weights.shape} and "
                f"{successors.shape}"
            )
        rows, dimension = weights.shape
        key = self._key_matrix(level, weights, successors)
        key_bytes = key.tobytes()
        row_nbytes = key.shape[1] * key.itemsize

        index = self._ensure_index()
        index_get = index.get
        ids = np.empty(rows, dtype=np.int32)
        fresh: list[int] = []
        fresh_append = fresh.append
        next_id = self._num_nodes
        position = 0
        for row in range(rows):
            row_key = key_bytes[position : position + row_nbytes]
            position += row_nbytes
            node_id = index_get(row_key)
            if node_id is None:
                node_id = next_id
                next_id += 1
                index[row_key] = node_id
                fresh_append(row)
            ids[row] = node_id

        if fresh:
            count = len(fresh)
            self._reserve(count, count * dimension)
            xp = self._backend.xp
            rows_index = xp.asarray(fresh, dtype=np.intp)
            start = self._num_nodes
            edge_start = self._num_edges
            self._levels[start : start + count] = level
            self._counts[start : start + count] = dimension
            self._offsets[start : start + count] = (
                edge_start + dimension * xp.arange(count, dtype=np.int64)
            )
            self._weights[
                edge_start : edge_start + count * dimension
            ] = weights[rows_index].ravel()
            self._successors[
                edge_start : edge_start + count * dimension
            ] = successors[rows_index].ravel()
            self._num_nodes = start + count
            self._num_edges = edge_start + count * dimension
        return ids

    def intern(self, level: int, weights, successors) -> int:
        """Intern a single node row; return its id (scalar helper)."""
        xp = self._backend.xp
        ids = self.intern_level(
            level,
            xp.asarray(weights, dtype=np.complex128)[None, :],
            xp.asarray(successors, dtype=np.int32)[None, :],
        )
        return int(ids[0])

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ArrayBackend:
        """The array backend holding the columns."""
        return self._backend

    @property
    def tolerance(self) -> float:
        """The uniquing grid of the weight quantisation."""
        return self._tolerance

    @property
    def num_nodes(self) -> int:
        """Interned non-terminal nodes."""
        return self._num_nodes - 1

    @property
    def num_edges(self) -> int:
        """Stored edges (including structural-zero slots)."""
        return self._num_edges

    @property
    def nbytes(self) -> int:
        """Currently allocated column bytes (capacity, not fill)."""
        return int(
            self._levels.nbytes
            + self._offsets.nbytes
            + self._counts.nbytes
            + self._weights.nbytes
            + self._successors.nbytes
        )

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`nbytes` over the arena lifetime."""
        return self._peak_bytes

    def stats(self) -> ArenaStats:
        """Snapshot of the storage accounting."""
        nodes = self.num_nodes
        return ArenaStats(
            num_nodes=nodes,
            num_edges=self._num_edges,
            nbytes=self.nbytes,
            peak_bytes=self._peak_bytes,
            bytes_per_node=(
                self._peak_bytes / nodes if nodes else 0.0
            ),
        )

    def _check_id(self, node_id: int) -> int:
        node_id = int(node_id)
        if not 0 <= node_id < self._num_nodes:
            raise DecisionDiagramError(
                f"node id {node_id} out of range "
                f"(arena holds {self._num_nodes} ids)"
            )
        return node_id

    def node_level(self, node_id: int) -> int:
        """Level of ``node_id`` (-1 for the terminal)."""
        return int(self._levels[self._check_id(node_id)])

    def _edge_rows(self, node_id: int):
        """Host-side ``(weights, successors)`` lists of one node."""
        offset = int(self._offsets[node_id])
        count = int(self._counts[node_id])
        weights = self._backend.to_numpy(
            self._weights[offset : offset + count]
        ).tolist()
        successors = self._backend.to_numpy(
            self._successors[offset : offset + count]
        ).tolist()
        return weights, successors

    def view(self, node_id: int) -> NodeView:
        """The memoised :class:`NodeView` of ``node_id``."""
        node_id = self._check_id(node_id)
        found = self._views.get(node_id)
        if found is None:
            found = NodeView(self, node_id)
            self._views[node_id] = found
        return found

    # ------------------------------------------------------------------
    # Pickling (compact: ids + trimmed columns, no object graphs)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        to_numpy = self._backend.to_numpy
        return {
            "tolerance": self._tolerance,
            "array_backend": self._backend.name,
            "levels": to_numpy(self._levels[: self._num_nodes]).copy(),
            "offsets": to_numpy(self._offsets[: self._num_nodes]).copy(),
            "counts": to_numpy(self._counts[: self._num_nodes]).copy(),
            "weights": to_numpy(self._weights[: self._num_edges]).copy(),
            "successors": to_numpy(
                self._successors[: self._num_edges]
            ).copy(),
            "peak_bytes": self._peak_bytes,
        }

    def __setstate__(self, state: dict) -> None:
        self._tolerance = float(state["tolerance"])
        self._inv_tolerance = 1.0 / self._tolerance
        self._backend = get_array_backend(state["array_backend"])
        asarray = self._backend.asarray
        self._levels = asarray(state["levels"], dtype=np.int32)
        self._offsets = asarray(state["offsets"], dtype=np.int64)
        self._counts = asarray(state["counts"], dtype=np.int32)
        self._weights = asarray(state["weights"], dtype=np.complex128)
        self._successors = asarray(state["successors"], dtype=np.int32)
        self._num_nodes = int(self._levels.shape[0])
        self._num_edges = int(self._weights.shape[0])
        self._index = None  # rebuilt lazily on the next intern
        self._views = {}
        self._zero_edge = Edge.zero()
        self._peak_bytes = int(state["peak_bytes"])
        self._note_allocation()

    def __repr__(self) -> str:
        return (
            f"NodeArena(nodes={self.num_nodes}, edges={self._num_edges}, "
            f"backend={self._backend.name!r})"
        )
