"""Hash-consing of decision-diagram nodes.

The unique table guarantees that two canonically normalised nodes with
the same level and the same (weight, child) successor list are the same
Python object.  This implements the reduction rule of the paper: "two
edges pointing to the same node whenever it represents two identical
sub-trees, that would be otherwise stored twice" (Section 4.3).

Weights are canonicalised through a :class:`ComplexTable` before they
participate in the hash key, which makes sharing robust against
floating-point noise from different construction orders.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dd.edge import Edge
from repro.dd.node import DDNode
from repro.linalg.complex_table import ComplexTable

__all__ = ["UniqueTable"]


class UniqueTable:
    """Canonical store of decision-diagram nodes.

    Example:
        >>> table = UniqueTable()
        >>> a = table.get_node(0, [Edge(1.0, TERMINAL), Edge.zero()])
        >>> b = table.get_node(0, [Edge(1.0, TERMINAL), Edge.zero()])
        >>> a is b
        True
    """

    def __init__(self, tolerance: float = 1e-12):
        self._complex_table = ComplexTable(tolerance)
        self._nodes: dict[tuple, DDNode] = {}
        self._hits = 0
        self._misses = 0

    @property
    def complex_table(self) -> ComplexTable:
        """The complex table used to canonicalise weights."""
        return self._complex_table

    @property
    def num_nodes(self) -> int:
        """Number of distinct non-terminal nodes stored."""
        return len(self._nodes)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups resolved by sharing (0 when unused)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def canonical_weight(self, weight: complex) -> complex:
        """Return the canonical representative of an edge weight."""
        return self._complex_table.lookup(weight)

    def get_node(self, level: int, edges: Sequence[Edge]) -> DDNode:
        """Return the shared node for ``(level, edges)``.

        Edge weights are canonicalised; an existing structurally equal
        node is returned when available, otherwise a new node is
        interned and returned.
        """
        canonical_edges = tuple(
            Edge(self.canonical_weight(edge.weight), edge.node)
            if not edge.is_zero
            else Edge.zero()
            for edge in edges
        )
        key = (
            level,
            tuple(
                (edge.weight, id(edge.node)) for edge in canonical_edges
            ),
        )
        node = self._nodes.get(key)
        if node is not None:
            self._hits += 1
            return node
        self._misses += 1
        node = DDNode(level, canonical_edges)
        self._nodes[key] = node
        return node

    def get_node_canonical(
        self, level: int, edges: Sequence[Edge]
    ) -> DDNode:
        """Intern a node whose edges are already canonical.

        Fast path for the vectorised builder, which canonicalises all
        edge weights of a level in one :meth:`ComplexTable.lookup_many`
        batch before interning.  The caller guarantees that every
        weight is a canonical representative of this table's complex
        table and that zero edges are exact :meth:`Edge.zero` edges;
        under those preconditions this produces exactly the node
        :meth:`get_node` would, without re-probing the complex table
        per edge.
        """
        key = (
            level,
            tuple([(edge.weight, id(edge.node)) for edge in edges]),
        )
        node = self._nodes.get(key)
        if node is not None:
            self._hits += 1
            return node
        self._misses += 1
        node = DDNode(level, edges)
        self._nodes[key] = node
        return node

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"UniqueTable(nodes={len(self._nodes)}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
