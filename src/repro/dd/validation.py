"""Structural validation of decision diagrams.

:func:`validate_diagram` checks every invariant the rest of the
library relies on, raising :class:`DecisionDiagramError` with a
precise message on the first violation.  Useful when diagrams come
from external sources (the DDTXT loader) or hand-construction in
tests; the builder always produces valid diagrams.
"""

from __future__ import annotations

import math

from repro.dd.diagram import DecisionDiagram
from repro.dd.node import DDNode
from repro.exceptions import DecisionDiagramError

__all__ = ["validate_diagram"]


def validate_diagram(
    dd: DecisionDiagram, tolerance: float = 1e-9
) -> None:
    """Check all structural and numerical invariants of a diagram.

    Verified properties:

    * node dimensions match the register's per-level dimensions;
    * child levels strictly increase by one (terminal below the last
      level only);
    * zero-weight edges point to the terminal;
    * every node is normalised (unit sum of squared weights) with a
      real-positive first non-zero weight;
    * the diagram is acyclic (guaranteed by the level check).

    Raises:
        DecisionDiagramError: On the first violated invariant.
    """
    dims = dd.dims
    if dd.root.is_zero:
        return
    if dd.root.node.level != 0:
        raise DecisionDiagramError(
            f"root node at level {dd.root.node.level}, expected 0"
        )

    seen: set[int] = set()

    def check(node: DDNode) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        level = node.level
        if not 0 <= level < len(dims):
            raise DecisionDiagramError(
                f"node level {level} out of range for register {dims}"
            )
        if node.dimension != dims[level]:
            raise DecisionDiagramError(
                f"node at level {level} has {node.dimension} "
                f"successors, register expects {dims[level]}"
            )
        total = math.fsum(abs(w) ** 2 for w in node.weights)
        if abs(total - 1.0) > tolerance:
            raise DecisionDiagramError(
                f"node at level {level} has squared-weight sum {total}"
            )
        first_seen = False
        for digit, edge in enumerate(node.edges):
            if edge.is_zero:
                if not edge.node.is_terminal:
                    raise DecisionDiagramError(
                        f"zero edge {digit} at level {level} does not "
                        "point to the terminal"
                    )
                continue
            if not first_seen:
                first_seen = True
                weight = edge.weight
                if abs(weight.imag) > tolerance or weight.real <= 0:
                    raise DecisionDiagramError(
                        f"first non-zero weight {weight} at level "
                        f"{level} is not real positive"
                    )
            if edge.node.is_terminal:
                if level != len(dims) - 1:
                    raise DecisionDiagramError(
                        f"terminal edge at level {level}, but the "
                        f"register has {len(dims)} levels"
                    )
            else:
                if edge.node.level != level + 1:
                    raise DecisionDiagramError(
                        f"edge from level {level} jumps to level "
                        f"{edge.node.level}"
                    )
                check(edge.node)

    check(dd.root.node)
