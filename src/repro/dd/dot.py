"""Graphviz DOT export of decision diagrams.

Produces a textual DOT description in the visual style of Figures 3
and 4 of the paper: one rank per qudit level, nodes labelled with their
variable name, edges labelled with their (rounded) complex weights, and
zero edges omitted for readability (or drawn dashed when requested).
"""

from __future__ import annotations

from repro.dd.diagram import DecisionDiagram
from repro.dd.node import DDNode

__all__ = ["to_dot"]


def _format_weight(weight: complex, precision: int) -> str:
    """Human-readable complex weight for edge labels."""
    real = round(weight.real, precision)
    imag = round(weight.imag, precision)
    if imag == 0:
        return f"{real:g}"
    if real == 0:
        return f"{imag:g}i"
    sign = "+" if imag > 0 else "-"
    return f"{real:g}{sign}{abs(imag):g}i"


def to_dot(
    dd: DecisionDiagram,
    show_zero_edges: bool = False,
    precision: int = 4,
) -> str:
    """Render a decision diagram as a Graphviz DOT document.

    Args:
        dd: The diagram to render.
        show_zero_edges: Draw zero edges dashed instead of hiding them.
        precision: Decimal places for edge-weight labels.

    Returns:
        The DOT source as a string (feed to ``dot -Tpdf`` etc.).
    """
    lines = [
        "digraph DecisionDiagram {",
        "  rankdir=TB;",
        '  node [shape=circle, fontname="Helvetica"];',
        '  edge [fontname="Helvetica", fontsize=10];',
    ]
    ids: dict[int, str] = {}
    per_level: dict[int, list[str]] = {}

    def name_of(node: DDNode) -> str:
        existing = ids.get(id(node))
        if existing is not None:
            return existing
        name = f"n{len(ids)}"
        ids[id(node)] = name
        return name

    lines.append('  root [shape=point, label=""];')
    lines.append("  terminal [shape=box, label=\"1\"];")

    root_label = _format_weight(dd.root.weight, precision)
    if dd.root.is_zero:
        lines.append("}")
        return "\n".join(lines)

    num_qudits = dd.register.num_qudits
    lines.append(
        f'  root -> {name_of(dd.root.node)} [label="{root_label}"];'
    )
    for node in dd.nodes():
        node_name = name_of(node)
        variable = f"q{num_qudits - 1 - node.level}"
        per_level.setdefault(node.level, []).append(node_name)
        lines.append(f'  {node_name} [label="{variable}"];')
        for digit, edge in enumerate(node.edges):
            if edge.is_zero:
                if show_zero_edges:
                    lines.append(
                        f"  {node_name} -> terminal "
                        f'[style=dashed, label="{digit}: 0"];'
                    )
                continue
            weight_label = _format_weight(edge.weight, precision)
            target = (
                "terminal"
                if edge.node.is_terminal
                else name_of(edge.node)
            )
            lines.append(
                f"  {node_name} -> {target} "
                f'[label="{digit}: {weight_label}"];'
            )
    for level, names in sorted(per_level.items()):
        lines.append(
            "  { rank=same; " + "; ".join(sorted(set(names))) + "; }"
        )
    lines.append("}")
    return "\n".join(lines)
