"""The built-in passes of the preparation pipeline.

Each pass implements one stage of the paper's Figure 2 flow behind the
single-method :class:`Pass` protocol — ``run(context) -> context`` —
so stages can be reordered, replaced, or interleaved with user-defined
passes (see ``docs/pipeline.md`` and ``examples/custom_pipeline.py``):

* :class:`CoercePass` — normalise the raw input into a
  :class:`~repro.states.statevector.StateVector`,
* :class:`BuildPass` — state to edge-weighted decision diagram,
* :class:`ApproximatePass` — fidelity-bounded DD reduction,
* :class:`SynthesisPass` — DD to multi-controlled-rotation circuit,
* :class:`TranspilePass` — optional peephole cleanup and two-qudit
  lowering (reachable end-to-end via ``PipelineConfig.transpile``),
* :class:`VerifyPass` — simulate the circuit and record the achieved
  fidelity (ancilla-aware for transpiled circuits).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

# The coercion rule lives with PreparationResult in core.preparation
# (which deliberately has no module-level pipeline imports); sharing
# the private helper keeps one source of truth across the seam.
from repro.core.preparation import _coerce_state
from repro.core.synthesis import synthesize_preparation
from repro.core.verification import prepared_state, verify_preparation
from repro.dd.approximation import approximate
from repro.dd.builder import build_dd
from repro.exceptions import PipelineError
from repro.pipeline.context import PipelineContext
from repro.states.fidelity import fidelity
from repro.states.statevector import StateVector
from repro.transpile.counter import decompose_multicontrolled
from repro.transpile.passes import peephole_optimize

__all__ = [
    "ApproximatePass",
    "BuildPass",
    "CoercePass",
    "Pass",
    "SynthesisPass",
    "TranspilePass",
    "VerifyPass",
]


class Pass(ABC):
    """One composable pipeline stage.

    Subclasses set :attr:`name` (the key the stage's wall time is
    recorded under) and implement :meth:`run`.  Passes must not mutate
    the artefacts they read (diagrams, circuits) — they replace the
    context fields they own, which keeps cloned contexts cheap and
    re-runnable.
    """

    #: Ledger key of this stage; also the default cache signature.
    name: str = "pass"

    @abstractmethod
    def run(self, context: PipelineContext) -> PipelineContext:
        """Execute the stage and return the (updated) context."""

    def signature(self) -> str:
        """Identity string folded into engine cache keys.

        Two passes with equal signatures are assumed interchangeable
        by the cache, so the default folds any instance state (the
        parameters of a configurable pass) into the string — two
        ``MyPass(threshold=...)`` instances with different thresholds
        never alias.  Override when instance state is not what
        distinguishes behaviour (or to make the string stable across
        processes when attribute reprs are not).
        """
        state = getattr(self, "__dict__", None)
        if state:
            details = ",".join(
                f"{key}={value!r}"
                for key, value in sorted(state.items())
            )
            return f"{self.name}({details})"
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CoercePass(Pass):
    """Normalise the raw input into the target :class:`StateVector`."""

    name = "coerce"

    def run(self, context: PipelineContext) -> PipelineContext:
        context.target = _coerce_state(
            context.state, context.dims
        ).normalized()
        return context


class BuildPass(Pass):
    """Construct the edge-weighted decision diagram of the target."""

    name = "build"

    def run(self, context: PipelineContext) -> PipelineContext:
        if context.target is None:
            raise PipelineError(
                "BuildPass needs a coerced target; run CoercePass first"
            )
        context.exact_diagram = build_dd(
            context.target, backend=context.config.dd_backend
        )
        context.diagram = context.exact_diagram
        return context


class ApproximatePass(Pass):
    """Fidelity-bounded reduction; a no-op at ``min_fidelity == 1``."""

    name = "approximate"

    def run(self, context: PipelineContext) -> PipelineContext:
        if context.exact_diagram is None:
            raise PipelineError(
                "ApproximatePass needs a diagram; run BuildPass first"
            )
        if context.config.min_fidelity < 1.0:
            context.approximation = approximate(
                context.exact_diagram,
                context.config.min_fidelity,
                granularity=context.config.approximation_granularity,
            )
            context.diagram = context.approximation.diagram
        return context


class SynthesisPass(Pass):
    """Synthesise the multi-controlled-rotation preparation circuit."""

    name = "synthesize"

    def run(self, context: PipelineContext) -> PipelineContext:
        if context.diagram is None:
            raise PipelineError(
                "SynthesisPass needs a diagram; run BuildPass first"
            )
        context.circuit = synthesize_preparation(
            context.diagram,
            tensor_elision=context.config.tensor_elision,
            emit_identity_rotations=(
                context.config.emit_identity_rotations
            ),
        )
        return context


class TranspilePass(Pass):
    """Peephole cleanup and optional two-qudit lowering.

    ``config.transpile == "peephole"`` merges adjacent rotations and
    drops identities; ``"two_qudit"`` additionally lowers every
    multi-controlled rotation through the ancilla-counter construction
    (the result circuit gains one ancilla qudit).  The pre-transpile
    operation count is kept in ``extras["synthesized_operations"]``.
    """

    name = "transpile"

    def run(self, context: PipelineContext) -> PipelineContext:
        mode = context.config.transpile
        if mode is None:
            return context
        if context.circuit is None:
            raise PipelineError(
                "TranspilePass needs a circuit; run SynthesisPass first"
            )
        context.extras["synthesized_operations"] = (
            context.circuit.num_operations
        )
        lowered = peephole_optimize(context.circuit)
        if mode == "two_qudit":
            lowered = decompose_multicontrolled(lowered)
        context.circuit = lowered
        return context


class VerifyPass(Pass):
    """Simulate the circuit and record the achieved fidelity.

    For transpiled circuits whose register grew by an ancilla, the
    produced state is projected onto the ancilla-``|0>`` subspace
    before comparison (the counter construction returns the ancilla
    clean, so no amplitude is lost).

    Simulation runs through the fused, level-batched kernel unless
    ``config.fused_verify`` is ``False`` (or the circuit is not
    fusable, in which case the per-gate kernel takes over
    automatically).
    """

    name = "verify"

    def run(self, context: PipelineContext) -> PipelineContext:
        if not context.config.verify:
            return context
        if context.circuit is None or context.target is None:
            raise PipelineError(
                "VerifyPass needs a circuit and a target; run the "
                "synthesis stages first"
            )
        target = context.target
        circuit = context.circuit
        fused = context.config.fused_verify
        if tuple(circuit.dims) == tuple(target.dims):
            context.fidelity = verify_preparation(
                circuit, target, fused=fused
            )
            return context
        produced = prepared_state(circuit, fused=fused)
        if (
            tuple(produced.dims[: len(target.dims)]) != tuple(target.dims)
            or produced.register.size % target.register.size != 0
        ):
            raise PipelineError(
                f"cannot verify a circuit on {produced.dims} "
                f"against a target on {target.dims}"
            )
        restricted = produced.amplitudes.reshape(
            target.register.size, -1
        )[:, 0]
        produced = StateVector(restricted, target.dims)
        context.fidelity = fidelity(target.normalized(), produced)
        return context
