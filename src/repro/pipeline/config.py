"""The frozen :class:`PipelineConfig` and its JSON form.

One value object replaces the keyword sprawl that used to travel from
the CLI through batch specs, jobs, the engine, and the service down to
:func:`repro.prepare_state`.  The config is hashable, picklable, and
round-trips losslessly through JSON (``to_json`` / ``from_json``), so
it can live in batch-spec documents, ``--pipeline`` files, and cache
content keys alike.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.dd.array_backend import DD_BACKENDS, default_dd_backend
from repro.exceptions import PipelineConfigError
from repro.simulator.fused_sim import default_fused_verify

__all__ = ["APPROXIMATION_GRANULARITIES", "TRANSPILE_MODES", "PipelineConfig"]

#: Legal values of :attr:`PipelineConfig.approximation_granularity`.
APPROXIMATION_GRANULARITIES = ("nodes", "amplitudes")

#: Legal values of :attr:`PipelineConfig.transpile` (besides ``None``):
#: ``"peephole"`` only cleans the circuit (identity removal, adjacent
#: rotation fusion); ``"two_qudit"`` additionally lowers every
#: multi-controlled rotation to two-qudit gates via the ancilla
#: counter of :mod:`repro.transpile.counter`.
TRANSPILE_MODES = ("peephole", "two_qudit")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that controls one preparation-pipeline run.

    Attributes:
        min_fidelity: Fidelity floor for DD approximation; 1.0 keeps
            the synthesis exact.
        tensor_elision: Apply the tensor-product control-elision rule.
        emit_identity_rotations: Emit zero-angle rotations (paper
            convention).
        verify: Simulate the circuit and record the achieved fidelity.
        approximation_granularity: ``"nodes"`` or ``"amplitudes"``.
        transpile: ``None`` (emit multi-controlled rotations as the
            paper counts them), ``"peephole"``, or ``"two_qudit"``.
        dd_backend: Node-store backend of the DD build — ``"object"``
            (heap nodes in a unique table) or ``"arena"`` (columnar
            :class:`~repro.dd.arena.NodeArena`).  Defaults to the
            ``REPRO_DD_BACKEND`` environment variable (``"object"``
            when unset).  Participates in :meth:`canonical`, so
            arena-built and object-built results never share a cache
            key.
        fused_verify: Run verification through the fused,
            level-batched kernel of
            :mod:`repro.simulator.fused_sim` (``False`` forces the
            per-gate in-place kernel).  Defaults to the
            ``REPRO_FUSED_VERIFY`` environment variable (``True``
            when unset).  Participates in :meth:`canonical`, so fused
            and per-gate verification results never share a cache
            key.

    Raises:
        PipelineConfigError: On any out-of-range or mistyped value.
    """

    min_fidelity: float = 1.0
    tensor_elision: bool = True
    emit_identity_rotations: bool = True
    verify: bool = True
    approximation_granularity: str = "nodes"
    transpile: str | None = None
    dd_backend: str = field(default_factory=default_dd_backend)
    fused_verify: bool = field(default_factory=default_fused_verify)

    def __post_init__(self) -> None:
        if isinstance(self.min_fidelity, bool) or not isinstance(
            self.min_fidelity, (int, float)
        ):
            raise PipelineConfigError(
                f"min_fidelity must be a number, "
                f"got {self.min_fidelity!r}"
            )
        object.__setattr__(self, "min_fidelity", float(self.min_fidelity))
        for flag in (
            "tensor_elision",
            "emit_identity_rotations",
            "verify",
            "fused_verify",
        ):
            if not isinstance(getattr(self, flag), bool):
                raise PipelineConfigError(
                    f"{flag} must be a boolean, "
                    f"got {getattr(self, flag)!r}"
                )
        if not 0.0 < self.min_fidelity <= 1.0:
            raise PipelineConfigError(
                f"min_fidelity must be in (0, 1], got {self.min_fidelity}"
            )
        if self.approximation_granularity not in APPROXIMATION_GRANULARITIES:
            raise PipelineConfigError(
                "approximation_granularity must be one of "
                f"{APPROXIMATION_GRANULARITIES}, got "
                f"{self.approximation_granularity!r}"
            )
        if self.transpile is not None and self.transpile not in TRANSPILE_MODES:
            raise PipelineConfigError(
                f"transpile must be null or one of {TRANSPILE_MODES}, "
                f"got {self.transpile!r}"
            )
        if self.dd_backend not in DD_BACKENDS:
            raise PipelineConfigError(
                f"dd_backend must be one of {DD_BACKENDS}, "
                f"got {self.dd_backend!r}"
            )

    # ------------------------------------------------------------------
    # Hashing / derived forms
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """Stable textual form used for content hashing.

        Every field participates, so two configs differing in *any*
        knob — including ``transpile`` — never share a cache key.
        """
        parts = [
            f"{spec.name}={getattr(self, spec.name)!r}"
            for spec in fields(PipelineConfig)
        ]
        return ";".join(parts)

    def updated(self, **changes) -> "PipelineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Flatten to a JSON-compatible dict (all fields, all values)."""
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(PipelineConfig)
        }

    @classmethod
    def from_dict(
        cls, raw: Mapping[str, object], where: str = "pipeline config"
    ) -> "PipelineConfig":
        """Build a config from its dict form.

        Raises:
            PipelineConfigError: On unknown fields or invalid values.
        """
        if not isinstance(raw, Mapping):
            raise PipelineConfigError(
                f"{where}: expected an object, got {raw!r}"
            )
        known = {spec.name for spec in fields(PipelineConfig)}
        unknown = set(raw) - known
        if unknown:
            raise PipelineConfigError(
                f"{where}: unknown fields {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        try:
            return cls(**raw)
        except PipelineConfigError as error:
            raise PipelineConfigError(f"{where}: {error}") from error

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON object string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(
        cls, text: str, where: str = "pipeline config"
    ) -> "PipelineConfig":
        """Parse a JSON object string into a config.

        Raises:
            PipelineConfigError: If ``text`` is not valid JSON or
                describes an invalid config.
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise PipelineConfigError(
                f"{where} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(document, where=where)

    @staticmethod
    def _read_document(path: str | os.PathLike) -> tuple[object, str]:
        path = Path(path)
        where = f"pipeline config {path}"
        try:
            text = path.read_text()
        except OSError as error:
            raise PipelineConfigError(
                f"cannot read pipeline config {path}: {error}"
            ) from error
        try:
            return json.loads(text), where
        except json.JSONDecodeError as error:
            raise PipelineConfigError(
                f"{where} is not valid JSON: {error}"
            ) from error

    @classmethod
    def load(cls, path: str | os.PathLike) -> "PipelineConfig":
        """Read and parse a pipeline-config JSON file.

        Raises:
            PipelineConfigError: If the file is unreadable, not valid
                JSON, or describes an invalid config.
        """
        document, where = cls._read_document(path)
        return cls.from_dict(document, where=where)

    @classmethod
    def load_overrides(
        cls, path: str | os.PathLike
    ) -> dict[str, object]:
        """Read a config file, returning only the fields it names.

        The document is validated in full (unknown fields and invalid
        values raise), but fields the file does not mention are *not*
        filled in with defaults — so the result can be layered over
        other defaults (a batch spec's ``"defaults"``) without
        silently resetting the fields the file left alone.

        Raises:
            PipelineConfigError: Same conditions as :meth:`load`.
        """
        document, where = cls._read_document(path)
        config = cls.from_dict(document, where=where)
        return {name: getattr(config, name) for name in document}
