"""The pass runner and the default preparation pipeline.

:class:`Pipeline` executes a sequence of :class:`~repro.pipeline.Pass`
objects over one :class:`~repro.pipeline.PipelineContext`, timing each
stage into the context's ledger.  :func:`default_pipeline` builds the
paper's Figure 2 flow for a given :class:`PipelineConfig`;
:func:`finalize` condenses a finished context into the classic
:class:`~repro.core.preparation.PreparationResult` with its Table 1
:class:`~repro.core.report.SynthesisReport`.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

import numpy as np

from repro.circuit.stats import statistics
from repro.core.preparation import PreparationResult
from repro.core.report import SynthesisReport
from repro.dd import metrics
from repro.exceptions import PipelineError
from repro.obs.tracing import current_trace
from repro.pipeline.config import PipelineConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.passes import (
    ApproximatePass,
    BuildPass,
    CoercePass,
    Pass,
    SynthesisPass,
    TranspilePass,
    VerifyPass,
)
from repro.registers.register import RegisterLike
from repro.states.statevector import StateVector

__all__ = [
    "Pipeline",
    "default_passes",
    "default_pipeline",
    "finalize",
    "run_pipeline",
]


class Pipeline:
    """An ordered sequence of passes with per-stage timing.

    Args:
        passes: The stages, executed in order.  Each must expose a
            ``name`` string and a ``run(context) -> context`` method.

    Raises:
        PipelineError: If ``passes`` is empty or contains an object
            without the :class:`Pass` surface.
    """

    def __init__(self, passes: Iterable[Pass]):
        self.passes = tuple(passes)
        if not self.passes:
            raise PipelineError("a pipeline needs at least one pass")
        for stage in self.passes:
            if not callable(getattr(stage, "run", None)) or not isinstance(
                getattr(stage, "name", None), str
            ):
                raise PipelineError(
                    f"{stage!r} does not implement the Pass protocol "
                    "(a 'name' string and a run(context) method)"
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        state: StateVector | Sequence[complex] | np.ndarray,
        dims: RegisterLike | None = None,
        config: PipelineConfig | None = None,
    ) -> PipelineContext:
        """Run all passes over a fresh context and return it."""
        context = PipelineContext(
            config=config if config is not None else PipelineConfig(),
            state=state,
            dims=dims,
        )
        return self.run_context(context)

    def run_context(self, context: PipelineContext) -> PipelineContext:
        """Run all passes over an existing context (timing each).

        Lets callers resume mid-flight contexts — e.g. re-running just
        the approximation stage per threshold on one built diagram.

        When the calling context carries a request trace (the engine
        establishes one per traced job), every pass is also recorded
        as a ``stage:<name>`` span, so one slow request shows its
        pipeline breakdown in the span tree.
        """
        trace = current_trace()
        for stage in self.passes:
            start = time.perf_counter()
            result = stage.run(context)
            elapsed = time.perf_counter() - start
            if not isinstance(result, PipelineContext):
                raise PipelineError(
                    f"pass {stage.name!r} returned {type(result).__name__}, "
                    "expected the PipelineContext"
                )
            context = result
            context.record(stage.name, elapsed)
            if trace is not None:
                trace.add_span(
                    f"stage:{stage.name}",
                    start=trace.offset(start),
                    duration=elapsed,
                )
        return context

    def prepare(
        self,
        state: StateVector | Sequence[complex] | np.ndarray,
        dims: RegisterLike | None = None,
        config: PipelineConfig | None = None,
    ) -> PreparationResult:
        """Run the pipeline and condense it into a result + report.

        Raises:
            PipelineError: If ``config`` requests transpilation but no
                pass named ``"transpile"`` is in this pipeline — a
                silently un-transpiled result would be mislabelled in
                the cache.  (The lower-level :meth:`run` /
                :meth:`run_context` stay unguarded for deliberately
                partial stage runs.)
        """
        config = config if config is not None else PipelineConfig()
        if config.transpile is not None and not any(
            stage.name == "transpile" for stage in self.passes
        ):
            raise PipelineError(
                f"config requests transpile={config.transpile!r} but "
                "this pipeline has no 'transpile' pass; add a "
                "TranspilePass (or use default_pipeline(config))"
            )
        return finalize(self.run(state, dims=dims, config=config))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def with_pass(
        self,
        new_pass: Pass,
        *,
        before: str | None = None,
        after: str | None = None,
    ) -> "Pipeline":
        """A new pipeline with ``new_pass`` inserted.

        Exactly one of ``before`` / ``after`` names the anchor stage;
        with neither, the pass is appended.

        Raises:
            PipelineError: If both anchors are given or the anchor
                name is not in this pipeline.
        """
        if before is not None and after is not None:
            raise PipelineError(
                "give at most one of 'before' and 'after'"
            )
        anchor = before if before is not None else after
        if anchor is None:
            return Pipeline(self.passes + (new_pass,))
        names = [stage.name for stage in self.passes]
        if anchor not in names:
            raise PipelineError(
                f"no pass named {anchor!r} in this pipeline; "
                f"have {names}"
            )
        position = names.index(anchor) + (0 if before is not None else 1)
        return Pipeline(
            self.passes[:position] + (new_pass,) + self.passes[position:]
        )

    def without_pass(self, name: str) -> "Pipeline":
        """A new pipeline with every pass named ``name`` removed."""
        remaining = tuple(
            stage for stage in self.passes if stage.name != name
        )
        if len(remaining) == len(self.passes):
            raise PipelineError(
                f"no pass named {name!r} in this pipeline"
            )
        return Pipeline(remaining)

    def signature(self) -> str:
        """Stable identity of this pass sequence (for cache keys)."""
        return "->".join(stage.signature() for stage in self.passes)

    def __repr__(self) -> str:
        return f"Pipeline([{', '.join(p.name for p in self.passes)}])"


def default_passes(config: PipelineConfig) -> tuple[Pass, ...]:
    """The Figure 2 stage sequence for ``config``.

    ``TranspilePass`` joins only when ``config.transpile`` asks for
    it, keeping the default exact flow identical to the historical
    ``prepare_state`` monolith.
    """
    passes: list[Pass] = [
        CoercePass(),
        BuildPass(),
        ApproximatePass(),
        SynthesisPass(),
    ]
    if config.transpile is not None:
        passes.append(TranspilePass())
    passes.append(VerifyPass())
    return tuple(passes)


def default_pipeline(config: PipelineConfig | None = None) -> Pipeline:
    """The standard preparation pipeline for ``config``."""
    return Pipeline(
        default_passes(config if config is not None else PipelineConfig())
    )


def finalize(context: PipelineContext) -> PreparationResult:
    """Condense a finished context into a :class:`PreparationResult`.

    The report mirrors the historical ``prepare_state`` exactly:
    ``synthesis_time`` covers the approximation plus synthesis stages
    (the paper's "Time" column), ``build_time`` and ``verify_time``
    the construction and verification stages; circuit metrics are
    taken from the final circuit (the transpiled one, when a
    ``TranspilePass`` ran).

    Raises:
        PipelineError: If the context is missing the target, diagram,
            or circuit (i.e. the core stages did not run).
    """
    if (
        context.target is None
        or context.diagram is None
        or context.exact_diagram is None
        or context.circuit is None
    ):
        raise PipelineError(
            "cannot finalize an incomplete pipeline context; the "
            "coerce, build, and synthesize stages must have run"
        )
    circuit_stats = statistics(context.circuit)
    diagram_stats = context.diagram.collect_stats()
    exact_stats = (
        diagram_stats
        if context.exact_diagram is context.diagram
        else context.exact_diagram.collect_stats()
    )
    report = SynthesisReport(
        dims=context.target.dims,
        tree_nodes=metrics.decomposition_tree_size(context.target.dims),
        visited_nodes=metrics.visited_tree_size(context.diagram),
        dag_nodes=diagram_stats.num_nodes,
        distinct_complex=diagram_stats.distinct_complex,
        operations=circuit_stats.num_operations,
        median_controls=circuit_stats.median_controls,
        mean_controls=circuit_stats.mean_controls,
        synthesis_time=(
            context.stage_seconds("approximate")
            + context.stage_seconds("synthesize")
            + context.stage_seconds("transpile")
        ),
        fidelity=context.fidelity,
        approximation_fidelity=(
            context.approximation.fidelity
            if context.approximation is not None
            else 1.0
        ),
        build_time=context.stage_seconds("build"),
        verify_time=(
            context.stage_seconds("verify")
            if context.fidelity is not None
            else 0.0
        ),
        dd_nodes=exact_stats.num_nodes,
        dd_peak_arena_bytes=exact_stats.peak_arena_bytes,
        dd_bytes_per_node=(
            exact_stats.peak_arena_bytes / exact_stats.num_nodes
            if exact_stats.num_nodes
            else 0.0
        ),
    )
    return PreparationResult(
        circuit=context.circuit,
        diagram=context.diagram,
        exact_diagram=context.exact_diagram,
        approximation=context.approximation,
        report=report,
        timings=tuple(context.timings),
    )


def run_pipeline(
    state: StateVector | Sequence[complex] | np.ndarray,
    dims: RegisterLike | None = None,
    config: PipelineConfig | None = None,
    pipeline: Pipeline | None = None,
) -> PreparationResult:
    """One-call front door: run ``pipeline`` (default when ``None``).

    This is what :func:`repro.prepare_state` and the engine's workers
    delegate to.
    """
    config = config if config is not None else PipelineConfig()
    if pipeline is None:
        pipeline = default_pipeline(config)
    return pipeline.prepare(state, dims=dims, config=config)
