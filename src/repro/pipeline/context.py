"""The mutable state threaded through a pipeline run.

A :class:`PipelineContext` carries everything the passes produce — the
coerced target state, the exact and approximated decision diagrams,
the synthesised circuit, the achieved fidelity — together with a
per-stage :class:`StageTiming` ledger filled in by the
:class:`~repro.pipeline.Pipeline` runner, so every layer above
(engine, service, CLI, analysis) gets per-stage wall times for free.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.circuit.circuit import Circuit
from repro.dd.approximation import ApproximationResult
from repro.dd.diagram import DecisionDiagram
from repro.registers.register import RegisterLike
from repro.states.statevector import StateVector

if TYPE_CHECKING:
    from repro.pipeline.config import PipelineConfig

__all__ = ["PipelineContext", "StageTiming", "aggregate_timings"]


def aggregate_timings(
    pairs: Iterable[tuple[str, float]],
) -> dict[str, float]:
    """Sum ``(stage, seconds)`` pairs into a ``{stage: seconds}`` table.

    The one aggregation every ledger surface shares —
    :meth:`PipelineContext.timings_dict`,
    ``PreparationResult.timings_dict``, and
    ``JobSuccess.stage_timings_dict`` — so repeated stages are always
    summed the same way.
    """
    table: dict[str, float] = {}
    for stage, seconds in pairs:
        table[stage] = table.get(stage, 0.0) + seconds
    return table


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one pipeline stage.

    Attributes:
        stage: The pass name (e.g. ``"build"``, ``"synthesize"``).
        seconds: Measured wall time of the pass's ``run`` call.
    """

    stage: str
    seconds: float


@dataclass
class PipelineContext:
    """Everything one pipeline run reads and writes.

    Passes receive the context, mutate (or replace) the fields they
    own, and return it.  Custom passes may stash additional artefacts
    in :attr:`extras` without touching the dataclass.

    Attributes:
        config: The immutable run configuration.
        state: The raw input state as handed to the pipeline
            (``StateVector`` or raw amplitudes).
        dims: Register dimensions when ``state`` is a raw array.
        target: The coerced, normalised target (set by ``CoercePass``).
        exact_diagram: The DD before approximation (``BuildPass``).
        diagram: The DD that gets synthesised (``ApproximatePass``;
            the exact diagram when no pruning happened).
        approximation: Pruning details, ``None`` for exact runs.
        circuit: The synthesised — and possibly transpiled — circuit.
        fidelity: ``|<target|prepared>|^2`` (``VerifyPass``), or
            ``None`` when verification is disabled.
        timings: Per-stage wall times, appended by the runner in
            execution order.
        extras: Free-form scratch space for custom passes.
    """

    config: "PipelineConfig"
    state: StateVector | Sequence[complex] | np.ndarray
    dims: RegisterLike | None = None
    target: StateVector | None = None
    exact_diagram: DecisionDiagram | None = None
    diagram: DecisionDiagram | None = None
    approximation: ApproximationResult | None = None
    circuit: Circuit | None = None
    fidelity: float | None = None
    timings: list[StageTiming] = field(default_factory=list)
    extras: dict[str, object] = field(default_factory=dict)

    def record(self, stage: str, seconds: float) -> None:
        """Append one stage timing to the ledger."""
        self.timings.append(StageTiming(stage=stage, seconds=seconds))

    def stage_seconds(self, stage: str) -> float:
        """Total wall time recorded under ``stage`` (0.0 if absent)."""
        return sum(t.seconds for t in self.timings if t.stage == stage)

    def timings_dict(self) -> dict[str, float]:
        """Ledger as ``{stage: seconds}``, summing repeated stages."""
        return aggregate_timings(
            (t.stage, t.seconds) for t in self.timings
        )

    def clone(self, **changes) -> "PipelineContext":
        """A shallow copy with fresh ledgers, for re-running stages.

        The diagrams/circuit references are shared (passes never
        mutate their inputs in place); the ``timings`` list and
        ``extras`` dict are copied so the clone accumulates its own.
        """
        clone = replace(self, **changes)
        clone.timings = list(clone.timings)
        clone.extras = dict(clone.extras)
        return clone
