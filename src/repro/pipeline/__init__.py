"""Composable, pass-based state-preparation pipeline.

The paper's Figure 2 flow — state → edge-weighted decision diagram →
fidelity-bounded reduction → multi-controlled-rotation synthesis — as
a sequence of single-responsibility passes over one shared context:

* :mod:`repro.pipeline.config` — the frozen :class:`PipelineConfig`
  (JSON round-trip; replaces the historical keyword sprawl),
* :mod:`repro.pipeline.context` — :class:`PipelineContext` and the
  per-stage :class:`StageTiming` ledger,
* :mod:`repro.pipeline.passes` — the :class:`Pass` protocol and the
  built-in stages (coerce/build/approximate/synthesize/transpile/
  verify),
* :mod:`repro.pipeline.pipeline` — the :class:`Pipeline` runner,
  :func:`default_pipeline`, and :func:`finalize`.

:func:`repro.prepare_state` is a thin wrapper over
:func:`default_pipeline`; the engine, the async service, and the
``batch``/``serve`` CLIs all accept a :class:`PipelineConfig` (and the
engine a whole custom :class:`Pipeline`).  See ``docs/pipeline.md``.
"""

from repro.pipeline.config import (
    APPROXIMATION_GRANULARITIES,
    TRANSPILE_MODES,
    PipelineConfig,
)
from repro.pipeline.context import (
    PipelineContext,
    StageTiming,
    aggregate_timings,
)
from repro.pipeline.passes import (
    ApproximatePass,
    BuildPass,
    CoercePass,
    Pass,
    SynthesisPass,
    TranspilePass,
    VerifyPass,
)
from repro.pipeline.pipeline import (
    Pipeline,
    default_passes,
    default_pipeline,
    finalize,
    run_pipeline,
)

__all__ = [
    "APPROXIMATION_GRANULARITIES",
    "ApproximatePass",
    "BuildPass",
    "CoercePass",
    "Pass",
    "Pipeline",
    "PipelineConfig",
    "PipelineContext",
    "StageTiming",
    "SynthesisPass",
    "TRANSPILE_MODES",
    "TranspilePass",
    "VerifyPass",
    "aggregate_timings",
    "default_passes",
    "default_pipeline",
    "finalize",
    "run_pipeline",
]
