"""Network front end (HTTP + streaming TCP) over the serving layer.

Dependency-free (stdlib ``asyncio`` only), built on
:class:`repro.service.AsyncPreparationService` — see
``docs/serving.md``:

* :mod:`repro.net.protocol` — the versioned JSON wire schema shared
  by both transports (request/response envelopes, error codes mapped
  from :mod:`repro.exceptions`, outcome serialisation,
  ``comparable_wire_outcome``),
* :mod:`repro.net.http` — :class:`HttpServer`, a minimal HTTP/1.1
  server (``POST /v1/prepare``, ``POST /v1/batch``, ``GET /v1/stats``,
  ``GET /healthz``) with keep-alive, body limits, and graceful drain,
* :mod:`repro.net.tcp` — :class:`TcpServer`, a persistent
  newline-delimited-JSON stream with pipelined out-of-order responses,
* :mod:`repro.net.client` — :class:`ReproClient` (async, both
  transports) and :class:`SyncReproClient` (blocking facade).

``python -m repro serve [spec.json] --listen HOST:PORT [--tcp]``
serves real sockets from the CLI.
"""

from repro.net.client import ClientError, ReproClient, SyncReproClient
from repro.net.http import HttpServer
from repro.net.protocol import (
    PROTOCOL_VERSION,
    WireError,
    comparable_wire_outcome,
    error_code,
    outcome_to_wire,
)
from repro.net.tcp import TcpServer

__all__ = [
    "PROTOCOL_VERSION",
    "ClientError",
    "HttpServer",
    "ReproClient",
    "SyncReproClient",
    "TcpServer",
    "WireError",
    "comparable_wire_outcome",
    "error_code",
    "outcome_to_wire",
]
