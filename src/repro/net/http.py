"""Minimal HTTP/1.1 front end over the async serving layer.

Pure stdlib ``asyncio.start_server`` — no frameworks, no threads.  The
server speaks exactly the wire schema of :mod:`repro.net.protocol`
over four routes:

* ``POST /v1/prepare`` — one job (batch-spec job fields), one outcome,
* ``POST /v1/batch`` — a batch-spec document, all outcomes in order,
* ``GET /v1/stats`` — the service + engine counters
  (``ServiceStats.to_dict()``),
* ``GET /healthz`` — liveness (also reports whether the service is
  accepting work, its uptime, and the in-flight request count),
* ``GET /metrics`` — the Prometheus text exposition of the server's
  :class:`~repro.obs.MetricsRegistry` (404 when none is attached),
* ``GET /v1/trace/<id>`` — the retained span tree of a recent traced
  request (404 when tracing is off or the id has been evicted),
* ``GET /v1/traces/summary`` — the per-stage critical-path/self-time
  rollup over the retained trace ring.

A ``prepare``/``batch`` request is traced under the id the client
supplied — the ``X-Repro-Request-Id`` header or the body's ``id``
field — or a generated one; the response always echoes the id in its
``X-Repro-Request-Id`` header (and in the envelope's ``id`` field
when the client supplied one).  A request carrying an
``X-Repro-Trace`` header (a propagated trace context, see
``docs/observability.md``) is traced under the caller's trace id and
its span subtree is shipped back in the envelope's ``trace`` field
for grafting.

Connections are keep-alive by default (HTTP/1.1 semantics; honour
``Connection: close``), bodies are bounded by ``max_request_bytes``,
and :meth:`HttpServer.stop` performs a graceful shutdown: the listener
closes first, every in-flight handler finishes, and only then is the
underlying service's micro-batch queue drained — no accepted request
is dropped.
"""

from __future__ import annotations

import asyncio
import json
import time
from urllib.parse import unquote

from repro.net.base import CLOSING, StreamServer
from repro.net.protocol import (
    PROTOCOL_VERSION,
    WireError,
    error_envelope,
    execute_request,
    result_envelope,
)
from repro.obs.tracing import context_from_header

__all__ = ["HttpServer"]

#: Content type of the Prometheus text exposition format.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: HTTP status per wire error code; anything unlisted is a 500.
_STATUS_BY_CODE = {
    "bad_json": 400,
    "bad_request": 400,
    "job_spec": 400,
    "pipeline_config": 400,
    "unsupported_version": 400,
    "unknown_op": 404,
    "not_found": 404,
    "method_not_allowed": 405,
    "too_large": 413,
    "shutting_down": 503,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Route table: path → (method, operation).
_ROUTES = {
    "/v1/prepare": ("POST", "prepare"),
    "/v1/batch": ("POST", "batch"),
    "/v1/stats": ("GET", "stats"),
    "/healthz": ("GET", "health"),
    "/metrics": ("GET", "metrics"),
    "/v1/traces/summary": ("GET", "traces_summary"),
}

#: Prefix route for trace read-back: ``GET /v1/trace/<request-id>``.
_TRACE_PREFIX = "/v1/trace/"

#: Operations traced end-to-end (the read-only routes are not worth a
#: ring-buffer slot each).
_TRACED_OPS = frozenset({"prepare", "batch"})


class _RawResponse:
    """A non-JSON response body with its own content type."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str):
        self.body = body
        self.content_type = content_type


class _HttpRequest:
    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(self, method, path, headers, body, keep_alive):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class HttpServer(StreamServer):
    """Serve an :class:`~repro.service.AsyncPreparationService` over HTTP.

    Untrusted input is bounded everywhere: request lines and header
    lines by the stream's 64 KiB line limit, header count by
    :attr:`_MAX_HEADER_LINES`, bodies by ``max_request_bytes`` —
    violations are answered with a structured error and the
    connection is closed.

    Args:
        service: A *running* service.  ``stop()`` drains and stops it
            too (the CLI starts/stops both); do not share one service
            between independently-stopped servers.
        host: Bind address.
        port: Bind port; 0 picks an ephemeral port (see :attr:`port`).
        max_request_bytes: Hard cap on a request body; larger bodies
            are refused with 413 without being read into memory.
        job_defaults: Option defaults layered under every wire job
            (the CLI's ``--pipeline`` config), exactly like the
            batch-spec ``defaults`` merge.
        drain_timeout: Seconds ``stop()`` waits for in-flight
            handlers before cancelling them (``None`` = forever).
        metrics: Registry behind ``GET /metrics`` (see
            :class:`~repro.net.base.StreamServer`).
        tracer: Tracer behind ``GET /v1/trace/<id>``.
    """

    transport = "http"

    _MAX_HEADER_LINES = 256

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_request_bytes: int = 1_000_000,
        job_defaults=None,
        drain_timeout: float | None = 30.0,
        metrics=None,
        tracer=None,
        slow_trace_seconds: float | None = None,
    ):
        super().__init__(
            service, host, port,
            job_defaults=job_defaults,
            drain_timeout=drain_timeout,
            metrics=metrics,
            tracer=tracer,
            slow_trace_seconds=slow_trace_seconds,
        )
        self.max_request_bytes = max_request_bytes

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        forced = False
        try:
            while True:
                try:
                    request = await self._next_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except (ConnectionError, OSError):
                    # Abrupt client disconnect (TCP reset) mid-read:
                    # nothing to answer, just drop the connection.
                    break
                except WireError as error:
                    # Request framing is broken — answer and close;
                    # we cannot trust the stream position anymore.
                    await self._write_response(
                        writer,
                        _STATUS_BY_CODE.get(error.code, 500),
                        error_envelope(error),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                # A stopping server answers what it has already read
                # but never holds the connection open for more.
                keep_alive = request.keep_alive and not (
                    self._closing is not None and self._closing.is_set()
                )
                started = self._request_begin()
                trace = None
                failed_code = None
                try:
                    status, payload, trace = await self._respond(
                        request
                    )
                    if (
                        isinstance(payload, dict)
                        and payload.get("ok") is False
                    ):
                        failed_code = payload.get("error", {}).get(
                            "code"
                        )
                except WireError as error:
                    status = _STATUS_BY_CODE.get(error.code, 500)
                    payload = error_envelope(error)
                    failed_code = error.code
                except Exception as error:  # noqa: BLE001 - wire boundary
                    wire = WireError.from_exception(error)
                    status = 500
                    payload = error_envelope(wire)
                    failed_code = wire.code
                await self._write_response(
                    writer, status, payload,
                    keep_alive=keep_alive, trace=trace,
                )
                self._request_end(
                    self._op_label(request.path), started,
                    error_code=failed_code,
                    request_id=(
                        trace.request_id if trace is not None else None
                    ),
                    trace=trace,
                )
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # stop()'s drain deadline: the peer may never read again,
            # so a graceful flush could wait forever.
            forced = True
            raise
        finally:
            self._connections.discard(task)
            if forced:
                writer.transport.abort()
            else:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                except asyncio.CancelledError:
                    # Cancelled while flushing to a non-reading peer:
                    # discard the buffer, don't wait on it.
                    writer.transport.abort()
                    raise

    async def _next_request(self, reader) -> _HttpRequest | None:
        """Wait for the next request, or ``None`` when the server is
        closing and the connection is idle.

        A connection parked in ``readline`` between keep-alive
        requests would otherwise stall graceful shutdown forever; the
        race is resolved by :meth:`_read_or_closing` in favour of the
        request, so nothing already sent is dropped.
        """
        result = await self._read_or_closing(self._read_request(reader))
        if result is CLOSING:
            return None
        return result

    async def _read_request(self, reader) -> _HttpRequest | None:
        try:
            request_line = await reader.readline()
        except ValueError:
            # readline wraps LimitOverrunError (line beyond the 64 KiB
            # stream limit) in ValueError.
            raise WireError(
                "too_large", "request line exceeds the size limit"
            )
        if not request_line:
            return None
        try:
            method, path, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise WireError(
                "bad_request",
                f"malformed request line {request_line!r}",
            )
        headers: dict[str, str] = {}
        for _ in range(self._MAX_HEADER_LINES):
            try:
                line = await reader.readline()
            except ValueError:
                raise WireError(
                    "too_large", "header line exceeds the size limit"
                )
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise WireError(
                "too_large",
                f"more than {self._MAX_HEADER_LINES} header lines",
            )
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise WireError(
                "bad_request", "chunked request bodies are not supported"
            )
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise WireError(
                "bad_request",
                f"bad Content-Length {headers.get('content-length')!r}",
            )
        if content_length < 0:
            raise WireError(
                "bad_request",
                f"negative Content-Length {content_length}",
            )
        if content_length > self.max_request_bytes:
            raise WireError(
                "too_large",
                f"request body of {content_length} bytes exceeds the "
                f"limit of {self.max_request_bytes}",
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and version.upper() not in (
            "HTTP/1.0",
        )
        return _HttpRequest(method, path, headers, body, keep_alive)

    @staticmethod
    def _op_label(path: str) -> str:
        """The ``op`` metric-label value for a request path."""
        route = _ROUTES.get(path)
        if route is not None:
            return route[1]
        if path.startswith(_TRACE_PREFIX):
            return "trace"
        return "invalid"

    def _respond_metrics(self):
        if self.metrics is None:
            raise WireError(
                "not_found", "no metrics registry on this server"
            )
        return 200, _RawResponse(
            self.metrics.render_prometheus().encode(),
            _PROMETHEUS_CONTENT_TYPE,
        ), None

    def _respond_trace(self, request: _HttpRequest):
        if request.method != "GET":
            raise WireError(
                "method_not_allowed",
                f"{request.path} takes GET, not {request.method}",
            )
        if self.tracer is None:
            raise WireError(
                "not_found", "tracing is not enabled on this server"
            )
        request_id = unquote(request.path[len(_TRACE_PREFIX):])
        trace = self.tracer.get(request_id)
        if trace is None:
            raise WireError(
                "not_found",
                f"no retained trace for request id {request_id!r}",
            )
        return 200, result_envelope(trace.to_dict()), None

    async def _respond(
        self, request: _HttpRequest
    ) -> tuple[int, object, object]:
        """Answer one request: ``(status, payload, trace-or-None)``.

        ``payload`` is an envelope dict, or a :class:`_RawResponse`
        for the Prometheus exposition.
        """
        route = _ROUTES.get(request.path)
        if route is None:
            if request.path.startswith(_TRACE_PREFIX):
                return self._respond_trace(request)
            raise WireError(
                "not_found", f"no route for {request.path!r}"
            )
        method, op = route
        if request.method != method:
            raise WireError(
                "method_not_allowed",
                f"{request.path} takes {method}, not {request.method}",
            )
        if op == "health":
            health = {
                "status": "ok",
                "accepting": self.service.running,
                # Unstable extras (see docs/observability.md): shape
                # may change between versions.
                "uptime_seconds": round(
                    getattr(self.service, "uptime", lambda: 0.0)(), 6
                ),
                "inflight_requests": self.inflight_requests,
                "v": PROTOCOL_VERSION,
            }
            # Cluster front ends expose per-shard detail; the plain
            # service has no shard_health and keeps the historical
            # shape byte-for-byte.
            shard_health = getattr(self.service, "shard_health", None)
            if callable(shard_health):
                health["shards"] = shard_health()
            return 200, result_envelope(health), None
        if op == "metrics":
            return self._respond_metrics()
        if op == "traces_summary":
            if self.tracer is None:
                raise WireError(
                    "not_found",
                    "tracing is not enabled on this server",
                )
            return 200, result_envelope(self.tracer.summary()), None
        if not self.service.running:
            raise WireError(
                "shutting_down", "service is draining; try again later"
            )
        parse_started = time.perf_counter()
        payload: dict = {}
        if request.body:
            try:
                payload = json.loads(request.body)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise WireError(
                    "bad_json", f"body is not valid JSON: {error}"
                )
            if not isinstance(payload, dict):
                raise WireError(
                    "bad_request",
                    "body must be a JSON object",
                )
        parse_elapsed = time.perf_counter() - parse_started
        client_id = request.headers.get("x-repro-request-id")
        if client_id is None:
            client_id = payload.get("id")
        if self.tracer is None or op not in _TRACED_OPS:
            result = await execute_request(
                self.service, op, payload, defaults=self.job_defaults
            )
            return 200, result_envelope(
                result, request_id=client_id
            ), None
        context = context_from_header(
            request.headers.get("x-repro-trace")
        )
        with self.tracer.request(
            client_id, transport="http", context=context
        ) as trace:
            if trace is not None:
                trace.add_span(
                    "parse", start=0.0, duration=parse_elapsed
                )
            try:
                result = await execute_request(
                    self.service, op, payload,
                    defaults=self.job_defaults,
                )
            except WireError as error:
                if trace is not None:
                    trace.set_error(error.code, str(error))
                return (
                    _STATUS_BY_CODE.get(error.code, 500),
                    self._with_subtree(
                        error_envelope(error, request_id=client_id),
                        context, trace,
                    ),
                    trace,
                )
            except Exception as error:  # noqa: BLE001 - wire boundary
                wire = WireError.from_exception(error)
                if trace is not None:
                    trace.set_error(wire.code, str(wire))
                return (
                    500,
                    self._with_subtree(
                        error_envelope(wire, request_id=client_id),
                        context, trace,
                    ),
                    trace,
                )
        if (
            trace is not None
            and isinstance(result, dict)
            and result.get("ok") is False
        ):
            failure = result.get("error") or {}
            trace.set_error(
                failure.get("code", "internal"),
                failure.get("message", ""),
            )
        return 200, self._with_subtree(
            result_envelope(result, request_id=client_id),
            context, trace,
        ), trace

    @staticmethod
    def _with_subtree(envelope: dict, context, trace) -> dict:
        """Attach this process's span subtree to the envelope when the
        caller propagated a trace context (it will graft the spans)."""
        if context is not None and trace is not None:
            envelope["trace"] = trace.export()
        return envelope

    async def _write_response(
        self,
        writer,
        status: int,
        payload,
        keep_alive: bool,
        trace=None,
    ) -> None:
        serialize_span = (
            trace.begin_span("serialize", parent=trace.find("request"))
            if trace is not None else None
        )
        if isinstance(payload, _RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        request_id_header = ""
        if trace is not None:
            # The id may echo client input: strip CR/LF so it cannot
            # inject response headers.
            safe_id = (
                str(trace.request_id)
                .replace("\r", "")
                .replace("\n", "")[:256]
            )
            request_id_header = f"X-Repro-Request-Id: {safe_id}\r\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{request_id_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            if serialize_span is not None:
                serialize_span.finish()
