"""Shared listener lifecycle for the network front ends.

:class:`StreamServer` owns everything the HTTP and NDJSON/TCP servers
have in common: the ``asyncio.start_server`` listener, the bound-port
and running properties, connection tracking, the graceful ``stop()``
ordering, and the read-vs-shutdown race that lets idle connections be
closed without dropping a request that already arrived.  Subclasses
implement ``_handle_connection`` (the per-connection protocol loop)
and may override ``_listen_kwargs`` to pass extra options to
``asyncio.start_server``.
"""

from __future__ import annotations

import asyncio
import time

from repro.obs import log as obs_log
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["StreamServer", "CLOSING"]

#: Sentinel returned by :meth:`StreamServer._read_or_closing` when the
#: shutdown event won the race against the pending read.
CLOSING = object()


class StreamServer:
    """Common asyncio listener lifecycle for HTTP and TCP servers.

    Args:
        service: A *running*
            :class:`~repro.service.AsyncPreparationService`.  The
            server considers itself the service's final owner:
            :meth:`stop` drains and stops it.  Do not share one
            service between two servers that are stopped
            independently — the first ``stop()`` drains it for both.
        host: Bind address.
        port: Bind port; 0 picks an ephemeral port (see :attr:`port`).
        job_defaults: Option defaults layered under every wire job
            (the CLI's ``--pipeline`` config), exactly like the
            batch-spec ``defaults`` merge.
        drain_timeout: Seconds :meth:`stop` waits for in-flight
            connection handlers before cancelling them (``None``
            waits forever).  Bounds shutdown against a peer that
            stops reading its socket and parks a handler in
            ``writer.drain()`` indefinitely.
        metrics: A :class:`~repro.obs.MetricsRegistry` the server
            publishes wire metrics into — request counts and latency
            by transport, the in-flight gauge, and per-error-code
            counts.  Two servers may share one registry (the
            instrument factories are idempotent).  ``None`` leaves
            the transport un-instrumented.
        tracer: A :class:`~repro.obs.Tracer`; when given, every
            ``prepare``/``batch`` request is traced end-to-end under
            its wire request id.  ``None`` disables tracing.
        slow_trace_seconds: Requests slower than this many seconds
            get their full span tree emitted as one structured
            ``slow_request`` log record (warning level), so tail
            latency is diagnosable from the logs alone.  ``None``
            (the default) disables the dump.
    """

    #: Value of the ``transport`` metric label; subclasses override.
    transport = "stream"

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        job_defaults=None,
        drain_timeout: float | None = 30.0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        slow_trace_seconds: float | None = None,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.job_defaults = job_defaults
        self.drain_timeout = drain_timeout
        self.metrics = metrics
        self.tracer = tracer
        self.slow_trace_seconds = slow_trace_seconds
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing: asyncio.Event | None = None
        self.requests_served = 0
        self.inflight_requests = 0
        self._log = obs_log.get_logger(f"net.{self.transport}")
        self._requests_total = None
        self._request_seconds = None
        self._errors_total = None
        self._inflight_gauge = None
        if metrics is not None:
            self._requests_total = metrics.counter(
                "repro_requests_total",
                "Wire requests served, by transport and operation.",
                labels=("transport", "op"),
            )
            self._request_seconds = metrics.histogram(
                "repro_request_seconds",
                "Wall time from request receipt to response written.",
                labels=("transport",),
                exemplars=True,
            )
            self._errors_total = metrics.counter(
                "repro_errors_total",
                "Error envelopes returned, by transport and wire code.",
                labels=("transport", "code"),
            )
            self._inflight_gauge = metrics.gauge(
                "repro_inflight_requests",
                "Requests currently being served across transports.",
            )

    # ------------------------------------------------------------------
    # Instrumentation hooks (tolerate a None registry everywhere)
    # ------------------------------------------------------------------
    def _request_begin(self) -> float:
        """Mark one request in flight; returns its start instant."""
        self.inflight_requests += 1
        if self._inflight_gauge is not None:
            self._inflight_gauge.inc()
        return time.perf_counter()

    def _request_end(
        self,
        op: str,
        started: float,
        *,
        error_code: str | None = None,
        request_id: object = None,
        trace=None,
    ) -> None:
        """Mark a request finished: counters, latency, and one log line."""
        self.inflight_requests = max(0, self.inflight_requests - 1)
        elapsed = time.perf_counter() - started
        if self._inflight_gauge is not None:
            self._inflight_gauge.dec()
        if self._requests_total is not None:
            self._requests_total.labels(self.transport, op).inc()
            self._request_seconds.labels(self.transport).observe(
                elapsed,
                exemplar=(
                    trace.request_id if trace is not None else None
                ),
            )
            if error_code is not None:
                self._errors_total.labels(
                    self.transport, error_code
                ).inc()
        self.requests_served += 1
        fields = {"op": op, "duration": round(elapsed, 6)}
        if request_id is not None:
            fields["request_id"] = str(request_id)
        if error_code is not None:
            fields["error_code"] = error_code
            self._log.warning(f"{self.transport}_request", **fields)
        else:
            self._log.debug(f"{self.transport}_request", **fields)
        if (
            self.slow_trace_seconds is not None
            and trace is not None
            and elapsed >= self.slow_trace_seconds
        ):
            self._log.warning(
                "slow_request",
                op=op,
                request_id=trace.request_id,
                duration=round(elapsed, 6),
                threshold=self.slow_trace_seconds,
                trace=trace.to_dict(),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the kernel-assigned one)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    def _listen_kwargs(self) -> dict:
        """Extra keyword arguments for ``asyncio.start_server``."""
        return {}

    async def start(self) -> "StreamServer":
        if self._server is not None:
            return self
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            **self._listen_kwargs(),
        )
        return self

    async def stop(self) -> None:
        """Graceful shutdown, in order: stop accepting connections,
        wake idle handlers, let every in-flight request finish, then
        drain and stop the underlying service.  No accepted request
        is dropped."""
        if self._server is not None:
            self._server.close()
        # Wake idle handlers parked in _read_or_closing first; they
        # would otherwise never notice the shutdown.
        if self._closing is not None:
            self._closing.set()
        # Finish (or, past the deadline, cancel) every handler BEFORE
        # awaiting wait_closed(): on Python >= 3.12.1 wait_closed()
        # blocks until every connection drops, so putting it first
        # would both deadlock against idle handlers waiting on the
        # closing event and render the drain deadline unreachable for
        # a handler stuck in writer.drain().
        if self._connections:
            _, stuck = await asyncio.wait(
                list(self._connections), timeout=self.drain_timeout
            )
            if stuck:
                # A peer that stopped reading its socket can park a
                # handler in writer.drain() forever; past the
                # deadline, liveness wins over the drain guarantee.
                for connection in stuck:
                    connection.cancel()
                await asyncio.gather(*stuck, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "StreamServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Read-vs-shutdown race
    # ------------------------------------------------------------------
    async def _read_or_closing(self, coroutine):
        """Await *coroutine* unless the server starts closing first.

        Returns the read's result (its exceptions propagate), or the
        :data:`CLOSING` sentinel when shutdown won the race and the
        pending read was cancelled.  The race resolves in favour of
        the read: a request that completed before the shutdown signal
        is always returned, never dropped.
        """
        if self._closing is None or self._closing.is_set():
            coroutine.close()
            return CLOSING
        read = asyncio.ensure_future(coroutine)
        closing = asyncio.ensure_future(self._closing.wait())
        try:
            await asyncio.wait(
                {read, closing}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            closing.cancel()
        if not read.done():
            read.cancel()
            try:
                await read
            except (asyncio.CancelledError, asyncio.IncompleteReadError):
                pass
            return CLOSING
        return await read

    async def _handle_connection(self, reader, writer):
        raise NotImplementedError

    def __repr__(self) -> str:
        state = "listening" if self.running else "stopped"
        return (
            f"{type(self).__name__}({state}, {self.host}:{self.port})"
        )
