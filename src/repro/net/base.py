"""Shared listener lifecycle for the network front ends.

:class:`StreamServer` owns everything the HTTP and NDJSON/TCP servers
have in common: the ``asyncio.start_server`` listener, the bound-port
and running properties, connection tracking, the graceful ``stop()``
ordering, and the read-vs-shutdown race that lets idle connections be
closed without dropping a request that already arrived.  Subclasses
implement ``_handle_connection`` (the per-connection protocol loop)
and may override ``_listen_kwargs`` to pass extra options to
``asyncio.start_server``.
"""

from __future__ import annotations

import asyncio

__all__ = ["StreamServer", "CLOSING"]

#: Sentinel returned by :meth:`StreamServer._read_or_closing` when the
#: shutdown event won the race against the pending read.
CLOSING = object()


class StreamServer:
    """Common asyncio listener lifecycle for HTTP and TCP servers.

    Args:
        service: A *running*
            :class:`~repro.service.AsyncPreparationService`.  The
            server considers itself the service's final owner:
            :meth:`stop` drains and stops it.  Do not share one
            service between two servers that are stopped
            independently — the first ``stop()`` drains it for both.
        host: Bind address.
        port: Bind port; 0 picks an ephemeral port (see :attr:`port`).
        job_defaults: Option defaults layered under every wire job
            (the CLI's ``--pipeline`` config), exactly like the
            batch-spec ``defaults`` merge.
        drain_timeout: Seconds :meth:`stop` waits for in-flight
            connection handlers before cancelling them (``None``
            waits forever).  Bounds shutdown against a peer that
            stops reading its socket and parks a handler in
            ``writer.drain()`` indefinitely.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        job_defaults=None,
        drain_timeout: float | None = 30.0,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.job_defaults = job_defaults
        self.drain_timeout = drain_timeout
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing: asyncio.Event | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the kernel-assigned one)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    def _listen_kwargs(self) -> dict:
        """Extra keyword arguments for ``asyncio.start_server``."""
        return {}

    async def start(self) -> "StreamServer":
        if self._server is not None:
            return self
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            **self._listen_kwargs(),
        )
        return self

    async def stop(self) -> None:
        """Graceful shutdown, in order: stop accepting connections,
        wake idle handlers, let every in-flight request finish, then
        drain and stop the underlying service.  No accepted request
        is dropped."""
        if self._server is not None:
            self._server.close()
        # Wake idle handlers parked in _read_or_closing first; they
        # would otherwise never notice the shutdown.
        if self._closing is not None:
            self._closing.set()
        # Finish (or, past the deadline, cancel) every handler BEFORE
        # awaiting wait_closed(): on Python >= 3.12.1 wait_closed()
        # blocks until every connection drops, so putting it first
        # would both deadlock against idle handlers waiting on the
        # closing event and render the drain deadline unreachable for
        # a handler stuck in writer.drain().
        if self._connections:
            _, stuck = await asyncio.wait(
                list(self._connections), timeout=self.drain_timeout
            )
            if stuck:
                # A peer that stopped reading its socket can park a
                # handler in writer.drain() forever; past the
                # deadline, liveness wins over the drain guarantee.
                for connection in stuck:
                    connection.cancel()
                await asyncio.gather(*stuck, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "StreamServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Read-vs-shutdown race
    # ------------------------------------------------------------------
    async def _read_or_closing(self, coroutine):
        """Await *coroutine* unless the server starts closing first.

        Returns the read's result (its exceptions propagate), or the
        :data:`CLOSING` sentinel when shutdown won the race and the
        pending read was cancelled.  The race resolves in favour of
        the read: a request that completed before the shutdown signal
        is always returned, never dropped.
        """
        if self._closing is None or self._closing.is_set():
            coroutine.close()
            return CLOSING
        read = asyncio.ensure_future(coroutine)
        closing = asyncio.ensure_future(self._closing.wait())
        try:
            await asyncio.wait(
                {read, closing}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            closing.cancel()
        if not read.done():
            read.cancel()
            try:
                await read
            except (asyncio.CancelledError, asyncio.IncompleteReadError):
                pass
            return CLOSING
        return await read

    async def _handle_connection(self, reader, writer):
        raise NotImplementedError

    def __repr__(self) -> str:
        state = "listening" if self.running else "stopped"
        return (
            f"{type(self).__name__}({state}, {self.host}:{self.port})"
        )
