"""The versioned JSON wire schema of the network front end.

Both transports — the HTTP/1.1 server (:mod:`repro.net.http`) and the
newline-delimited-JSON stream server (:mod:`repro.net.tcp`) — speak
the same logical protocol defined here:

* **Requests** name an operation (``prepare`` / ``batch`` / ``stats``
  / ``ping``) and carry a payload whose job fields are parsed by the
  batch-spec machinery of :mod:`repro.engine.spec` — the wire accepts
  exactly what ``python -m repro batch`` accepts per job.
* **Responses** are envelopes ``{"v": 1, "ok": true, "result": ...}``
  or ``{"v": 1, "ok": false, "error": {"code", "type", "message"}}``;
  stream responses additionally echo the request ``id`` so clients can
  pipeline out of order.
* **Error codes** are derived mechanically from the library's
  exception hierarchy (:mod:`repro.exceptions`): ``JobSpecError`` →
  ``job_spec``, ``DimensionError`` → ``dimension``, and so on, plus a
  small set of protocol-level codes (``bad_json``, ``too_large``,
  ``unknown_op`` …).  A per-job :class:`~repro.engine.JobFailure`
  travels inside a *successful* envelope, exactly as it does inside a
  :class:`~repro.engine.BatchResult`.

Successful outcomes are serialised with every
:class:`~repro.core.report.SynthesisReport` field plus the per-stage
``stage_timings`` ledger; :func:`comparable_wire_outcome` strips the
scheduling-dependent fields (wall times, cache flags) in exact analogy
to :func:`repro.engine.comparable_outcome`, so two transports — or the
wire and the in-process path — can be compared for equality.
"""

from __future__ import annotations

import dataclasses
import json
import re
from collections.abc import Mapping

from repro.circuit import qasm
from repro.core.report import SynthesisReport
from repro.engine.jobs import PreparationJob
from repro.engine.results import JobFailure, JobOutcome, JobSuccess
from repro.engine.spec import job_from_dict, jobs_from_spec
from repro.exceptions import ReproError

__all__ = [
    "ENVELOPE_FIELDS",
    "PROTOCOL_VERSION",
    "WireError",
    "comparable_wire_outcome",
    "decode_line",
    "encode_line",
    "error_code",
    "error_envelope",
    "execute_request",
    "outcome_from_wire",
    "outcome_to_wire",
    "parse_batch_payload",
    "parse_prepare_payload",
    "result_envelope",
]

#: Version tag carried by every envelope.  A request naming a version
#: this server does not speak is rejected with ``unsupported_version``
#: instead of being half-understood.
PROTOCOL_VERSION = 1

#: Report keys zeroed by :func:`comparable_wire_outcome`: wall times
#: plus the ``dd_*`` storage-accounting columns, which depend on the
#: node-store backend rather than on the synthesis result.
_TIMING_REPORT_FIELDS = (
    "synthesis_time",
    "build_time",
    "verify_time",
    "dd_nodes",
    "dd_peak_arena_bytes",
    "dd_bytes_per_node",
)

#: Operations a stream request may name.  The HTTP transport maps its
#: routes onto the same set (``POST /v1/prepare`` → ``prepare`` …);
#: ``metrics``, ``trace`` and ``traces_summary`` are the stream
#: analogues of ``GET /metrics``, ``GET /v1/trace/<id>`` and
#: ``GET /v1/traces/summary``.
OPERATIONS = (
    "prepare", "batch", "stats", "ping", "metrics", "trace",
    "traces_summary",
)

#: Envelope fields stripped before a payload reaches the batch-spec
#: parser: protocol bookkeeping plus the propagated trace context.
ENVELOPE_FIELDS = frozenset(
    {"v", "id", "op", "include_circuit", "trace"}
)


def _camel_to_snake(name: str) -> str:
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def error_code(error_type: str) -> str:
    """Stable wire code of a library exception class name.

    Mechanically derived — ``JobSpecError`` → ``job_spec``,
    ``DimensionError`` → ``dimension`` — so the mapping can never
    drift from :mod:`repro.exceptions`.  Names outside the hierarchy
    (a worker raising ``ValueError``) collapse to ``internal``.
    """
    import repro.exceptions as exceptions

    cls = getattr(exceptions, error_type, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        return "internal"
    stem = error_type.removesuffix("Error") or "repro"
    return _camel_to_snake(stem)


class WireError(Exception):
    """A request this server refuses, with its wire code.

    Protocol-level refusals (malformed JSON, oversized body, unknown
    operation) and library errors alike are surfaced to the client as
    an error envelope carrying ``code`` plus the original exception
    type and message.
    """

    def __init__(self, code: str, message: str, error_type: str = "WireError"):
        super().__init__(message)
        self.code = code
        self.error_type = error_type

    @classmethod
    def from_exception(cls, error: Exception) -> "WireError":
        name = type(error).__name__
        return cls(error_code(name), str(error), error_type=name)


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def result_envelope(result: object, request_id: object = None) -> dict:
    """A successful response envelope (``id`` only when given)."""
    envelope: dict[str, object] = {"v": PROTOCOL_VERSION, "ok": True}
    if request_id is not None:
        envelope["id"] = request_id
    envelope["result"] = result
    return envelope


def error_envelope(error: WireError, request_id: object = None) -> dict:
    """An error response envelope mirroring :func:`result_envelope`."""
    envelope: dict[str, object] = {"v": PROTOCOL_VERSION, "ok": False}
    if request_id is not None:
        envelope["id"] = request_id
    envelope["error"] = {
        "code": error.code,
        "type": error.error_type,
        "message": str(error),
    }
    return envelope


def encode_line(payload: Mapping[str, object]) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one NDJSON frame into a request dictionary.

    Raises:
        WireError: ``bad_json`` for undecodable bytes, ``bad_request``
            when the frame is not a JSON object.
    """
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireError("bad_json", f"request is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise WireError(
            "bad_request", f"request must be a JSON object, got {payload!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Payload parsing (reusing the batch-spec machinery)
# ----------------------------------------------------------------------
def _check_version(payload: Mapping[str, object]) -> None:
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise WireError(
            "unsupported_version",
            f"this server speaks protocol v{PROTOCOL_VERSION}, "
            f"request named v{version!r}",
        )


def parse_prepare_payload(
    payload: Mapping[str, object],
    defaults: Mapping[str, object] | None = None,
) -> tuple[PreparationJob, bool]:
    """Parse a ``prepare`` payload into ``(job, include_circuit)``.

    The job may come wrapped (``{"job": {...}}``, optionally with
    ``include_circuit``) or bare — any object with a ``dims`` field is
    taken as the job itself, which keeps one-line ``curl`` calls
    pleasant.  Job fields are exactly the batch-spec job fields.
    """
    _check_version(payload)
    include_circuit = payload.get("include_circuit", False)
    if not isinstance(include_circuit, bool):
        raise WireError(
            "bad_request", "'include_circuit' must be a boolean"
        )
    if "job" in payload:
        raw_job = payload["job"]
    else:
        raw_job = {
            key: value
            for key, value in payload.items()
            if key not in ENVELOPE_FIELDS
        }
        if "dims" not in raw_job:
            raise WireError(
                "bad_request",
                "prepare payload needs a 'job' object (or bare job "
                "fields including 'dims')",
            )
    try:
        job = job_from_dict(raw_job, defaults=defaults, where="job")
    except ReproError as error:
        raise WireError.from_exception(error)
    return job, include_circuit


def parse_batch_payload(
    payload: Mapping[str, object],
    defaults: Mapping[str, object] | None = None,
) -> tuple[list[PreparationJob], bool]:
    """Parse a ``batch`` payload into ``(jobs, include_circuit)``.

    The payload is a batch-spec document (``jobs`` + optional
    ``defaults``) as accepted by :func:`repro.engine.spec.jobs_from_spec`,
    plus the envelope fields and an optional ``include_circuit``.
    """
    _check_version(payload)
    include_circuit = payload.get("include_circuit", False)
    if not isinstance(include_circuit, bool):
        raise WireError(
            "bad_request", "'include_circuit' must be a boolean"
        )
    # Strip only the envelope fields; everything else goes to the
    # spec parser so unknown keys (e.g. a misspelled 'defaults') are
    # rejected exactly as `python -m repro batch` rejects them.
    document = {
        key: value
        for key, value in payload.items()
        if key not in ENVELOPE_FIELDS
    }
    try:
        jobs = jobs_from_spec(document, defaults_override=defaults)
    except ReproError as error:
        raise WireError.from_exception(error)
    return jobs, include_circuit


# ----------------------------------------------------------------------
# Outcome serialisation
# ----------------------------------------------------------------------
def outcome_to_wire(
    outcome: JobOutcome, include_circuit: bool = False
) -> dict:
    """Serialise one engine outcome for the wire.

    Successes carry the full report (every
    :class:`~repro.core.report.SynthesisReport` field), the cache
    flag, the worker wall time, and the per-stage ``stage_timings``
    ledger; with ``include_circuit`` the QDASM text of the circuit
    rides along.  Failures carry the mapped error code plus the
    original type and message.
    """
    wire: dict[str, object] = {
        "label": outcome.job.label,
        "dims": list(outcome.job.dims),
        "ok": outcome.ok,
        "key": outcome.key,
    }
    if outcome.ok:
        report = dataclasses.asdict(outcome.report)
        report["dims"] = list(report["dims"])
        wire["report"] = report
        wire["cache_hit"] = outcome.cache_hit
        wire["elapsed"] = outcome.elapsed
        wire["stage_timings"] = outcome.stage_timings_dict()
        # A success relayed from a remote shard may travel without its
        # circuit (cluster mode, fetch_circuits=False); only serialise
        # what we actually hold.
        if include_circuit and outcome.circuit is not None:
            wire["circuit"] = qasm.dumps(outcome.circuit)
    else:
        wire["error"] = {
            "code": error_code(outcome.error_type),
            "type": outcome.error_type,
            "message": outcome.message,
        }
    return wire


def outcome_from_wire(
    wire: Mapping[str, object], job: PreparationJob
) -> JobOutcome:
    """Rebuild an engine outcome from its wire form.

    The inverse of :func:`outcome_to_wire`, used by cluster front ends
    to relay a remote shard's answer as a first-class
    :class:`~repro.engine.JobSuccess` / ``JobFailure``.  ``job`` is the
    caller's original job object (the wire carries only its label and
    dims).  Unknown report fields from a newer peer are ignored; a
    missing ``circuit`` key yields ``circuit=None``.

    Raises:
        WireError: ``bad_response`` when the outcome object is
            structurally unusable.
    """
    ok = wire.get("ok")
    key = wire.get("key")
    if not isinstance(ok, bool) or not (key is None or isinstance(key, str)):
        raise WireError(
            "bad_response", f"malformed wire outcome: {dict(wire)!r}"
        )
    if not ok:
        error = wire.get("error")
        if not isinstance(error, Mapping):
            raise WireError(
                "bad_response", "failure outcome lacks an 'error' object"
            )
        return JobFailure(
            job=job,
            key=key,
            error_type=str(error.get("type", "ReproError")),
            message=str(error.get("message", "")),
            elapsed=float(wire.get("elapsed", 0.0)),
        )
    raw_report = wire.get("report")
    if key is None or not isinstance(raw_report, Mapping):
        raise WireError(
            "bad_response", "success outcome lacks 'key' or 'report'"
        )
    known = {field.name for field in dataclasses.fields(SynthesisReport)}
    report_fields = {
        name: value for name, value in raw_report.items() if name in known
    }
    try:
        report_fields["dims"] = tuple(report_fields["dims"])
        report = SynthesisReport(**report_fields)
    except (KeyError, TypeError) as error:
        raise WireError(
            "bad_response", f"unusable wire report: {error}"
        )
    circuit_text = wire.get("circuit")
    circuit = None
    if circuit_text is not None:
        try:
            circuit = qasm.loads(str(circuit_text))
        except ReproError as error:
            raise WireError(
                "bad_response", f"unparseable wire circuit: {error}"
            )
    stage_timings = wire.get("stage_timings") or {}
    if not isinstance(stage_timings, Mapping):
        raise WireError(
            "bad_response", "'stage_timings' must be an object"
        )
    return JobSuccess(
        job=job,
        key=key,
        circuit=circuit,
        report=report,
        cache_hit=bool(wire.get("cache_hit", False)),
        elapsed=float(wire.get("elapsed", 0.0)),
        stage_timings=tuple(
            (str(stage), float(seconds))
            for stage, seconds in stage_timings.items()
        ),
    )


def comparable_wire_outcome(wire: Mapping[str, object]) -> dict:
    """Strip the scheduling-dependent fields from a wire outcome.

    The exact analogue of :func:`repro.engine.comparable_outcome` on
    the serialised form: wall times are zeroed, ``cache_hit`` /
    ``elapsed`` / ``stage_timings`` / ``circuit`` are dropped.  Two
    executions of the same job — over HTTP, over TCP, or in process —
    are equivalent exactly when these forms are equal.
    """
    comparable = {
        key: value
        for key, value in wire.items()
        if key not in {"cache_hit", "elapsed", "stage_timings", "circuit"}
    }
    report = comparable.get("report")
    if isinstance(report, Mapping):
        comparable["report"] = {
            key: (0.0 if key in _TIMING_REPORT_FIELDS else value)
            for key, value in report.items()
        }
    return comparable


# ----------------------------------------------------------------------
# Shared request execution (both transports call this)
# ----------------------------------------------------------------------
async def execute_request(
    service,
    op: str,
    payload: Mapping[str, object],
    defaults: Mapping[str, object] | None = None,
    *,
    registry=None,
    tracer=None,
) -> object:
    """Run one request against an ``AsyncPreparationService``.

    Returns the ``result`` value of the response envelope; raises
    :class:`WireError` for anything refusable.  Per-job failures do
    *not* raise — they come back as failure outcomes inside the
    result, mirroring ``run_batch``.

    ``registry`` and ``tracer`` back the observability operations:
    ``metrics`` returns the registry's dict snapshot, ``trace``
    returns the retained span tree of the request id named by the
    payload's ``trace_id`` field; both answer ``not_found`` when the
    server has no registry/tracer attached.
    """
    if op == "ping":
        return {"pong": True, "v": PROTOCOL_VERSION}
    if op == "stats":
        # Cluster front ends aggregate fresh stats across the fleet
        # via an async hook; plain services answer synchronously.
        wire_stats = getattr(service, "wire_stats", None)
        if wire_stats is not None:
            try:
                return await wire_stats()
            except ReproError as error:
                raise WireError.from_exception(error)
        return service.stats().to_dict()
    if op == "metrics":
        if registry is None:
            raise WireError(
                "not_found", "no metrics registry on this server"
            )
        return registry.snapshot()
    if op == "trace":
        if tracer is None:
            raise WireError(
                "not_found", "tracing is not enabled on this server"
            )
        trace_id = payload.get("trace_id")
        if trace_id is None:
            raise WireError(
                "bad_request",
                "the 'trace' operation needs a 'trace_id' field",
            )
        trace = tracer.get(trace_id)
        if trace is None:
            raise WireError(
                "not_found",
                f"no retained trace for request id {trace_id!r}",
            )
        return trace.to_dict()
    if op == "traces_summary":
        if tracer is None:
            raise WireError(
                "not_found", "tracing is not enabled on this server"
            )
        return tracer.summary()
    if op == "prepare":
        job, include_circuit = parse_prepare_payload(payload, defaults)
        try:
            outcome = await service.submit(job)
        except ReproError as error:
            raise WireError.from_exception(error)
        return outcome_to_wire(outcome, include_circuit=include_circuit)
    if op == "batch":
        jobs, include_circuit = parse_batch_payload(payload, defaults)
        try:
            batch = await service.run_batch(jobs)
        except ReproError as error:
            raise WireError.from_exception(error)
        return {
            "outcomes": [
                outcome_to_wire(outcome, include_circuit=include_circuit)
                for outcome in batch.outcomes
            ],
            "wall_time": batch.wall_time,
        }
    raise WireError(
        "unknown_op",
        f"unknown operation {op!r}; expected one of {list(OPERATIONS)}",
    )
