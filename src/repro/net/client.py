"""Clients for the network front end: async ``ReproClient`` and a
synchronous wrapper.

Both transports are supported behind one surface::

    async with ReproClient("127.0.0.1", 8000) as client:          # HTTP
        outcome = await client.prepare(
            {"family": "ghz", "dims": [3, 6, 2]}
        )

    async with ReproClient("127.0.0.1", 9000, transport="tcp") as c:
        outcomes = await asyncio.gather(                     # pipelined
            *(c.prepare(job) for job in jobs)
        )

Over HTTP the client keeps one persistent keep-alive connection and
serialises requests on it (HTTP/1.1 has no multiplexing); over TCP it
pipelines — any number of ``prepare``/``batch`` calls may be in
flight at once, correlated by request id, so ``asyncio.gather`` over
many calls uses a single socket.

:class:`SyncReproClient` runs a private event loop on a background
thread so tests, benchmarks, and plain scripts can call the same API
without ``async``.

A failed *request* raises :class:`ClientError` (carrying the wire
error code); a failed *job* does not — it comes back as a failure
outcome dict (``ok: false``), mirroring the engine's per-job error
isolation.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections.abc import Mapping
from urllib.parse import quote

from repro.engine.jobs import PreparationJob
from repro.exceptions import ReproError
from repro.net.protocol import (
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
)
from repro.obs.tracing import context_to_header

__all__ = ["ClientError", "ReproClient", "SyncReproClient"]


class ClientError(ReproError):
    """The server refused a request (or the transport failed).

    Attributes:
        code: The wire error code (``bad_json``, ``job_spec``, …), or
            ``transport`` for connection-level failures.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def _job_to_wire(job) -> dict:
    """A job argument as its wire dict (pass-through for dicts)."""
    if isinstance(job, PreparationJob):
        return job.describe()
    if isinstance(job, Mapping):
        return dict(job)
    raise ClientError(
        "bad_request",
        f"job must be a PreparationJob or a dict, got {job!r}",
    )


class ReproClient:
    """Async client of the HTTP or TCP front end.

    Args:
        host: Server address.
        port: Server port.
        transport: ``"http"`` (request/response on one keep-alive
            connection) or ``"tcp"`` (pipelined NDJSON stream).
        timeout: Per-request timeout in seconds (``None`` disables).
        connect_timeout: Separate bound on connection establishment.
            ``None`` (the default) preserves the historical behavior —
            connecting is covered only by the per-request ``timeout``.
            Cluster health checks set this low so a black-holed shard
            fails fast without capping long synthesis requests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        transport: str = "http",
        timeout: float | None = 30.0,
        connect_timeout: float | None = None,
    ):
        if transport not in ("http", "tcp"):
            raise ClientError(
                "bad_request",
                f"transport must be 'http' or 'tcp', got {transport!r}",
            )
        self.host = host
        self.port = port
        self.transport = transport
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._connect_lock = asyncio.Lock()
        self._http_lock = asyncio.Lock()
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> "ReproClient":
        # Serialized: concurrent reconnects (several calls racing
        # after a sibling's timeout closed the connection) must not
        # open duplicate sockets or spawn two response pumps fighting
        # over one reader.
        async with self._connect_lock:
            if self.connected:
                return self
            try:
                opening = asyncio.open_connection(self.host, self.port)
                if self.connect_timeout is not None:
                    opening = asyncio.wait_for(
                        opening, self.connect_timeout
                    )
                self._reader, self._writer = await opening
            except asyncio.TimeoutError:
                raise ClientError(
                    "transport",
                    f"connect to {self.host}:{self.port} timed out "
                    f"after {self.connect_timeout}s",
                )
            except OSError as error:
                raise ClientError(
                    "transport",
                    f"cannot connect to {self.host}:{self.port}: "
                    f"{error}",
                )
            if self.transport == "tcp":
                self._reader_task = asyncio.ensure_future(
                    self._pump_responses()
                )
            return self

    async def aclose(self) -> None:
        # Detach the connection state atomically under the connect
        # lock, then tear the detached pieces down outside it: a
        # concurrent reconnect can never have its fresh writer nulled
        # mid-install by a sibling's timeout-triggered close.
        async with self._connect_lock:
            reader_task = self._reader_task
            writer = self._writer
            pending = list(self._pending.values())
            self._reader_task = None
            self._writer = None
            self._reader = None
            self._pending.clear()
        if reader_task is not None:
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        for future in pending:
            if not future.done():
                future.set_exception(
                    ClientError("transport", "connection closed")
                )

    async def __aenter__(self) -> "ReproClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def prepare(
        self, job, *, include_circuit: bool = False, trace=None
    ) -> dict:
        """Prepare one state; returns the wire outcome dict.

        ``trace`` is an optional trace context
        (:meth:`repro.obs.Trace.context`) propagated with the request;
        the server then ships its span subtree back and the result
        dict carries it under ``"trace"``.
        """
        payload: dict[str, object] = {"job": _job_to_wire(job)}
        if include_circuit:
            payload["include_circuit"] = True
        return await self._call("prepare", payload, trace=trace)

    async def batch(
        self, jobs, *, defaults=None, include_circuit: bool = False,
        trace=None,
    ) -> dict:
        """Prepare many states; returns ``{"outcomes": [...], ...}``.

        With a propagated ``trace`` context the result additionally
        carries the server's span subtree under ``"trace"``.
        """
        payload: dict[str, object] = {
            "jobs": [_job_to_wire(job) for job in jobs]
        }
        if defaults:
            payload["defaults"] = dict(defaults)
        if include_circuit:
            payload["include_circuit"] = True
        return await self._call("batch", payload, trace=trace)

    async def stats(self) -> dict:
        """Service + engine counters (``ServiceStats.to_dict()``)."""
        return await self._call("stats", {})

    async def ping(self) -> dict:
        """Liveness probe (``GET /healthz`` over HTTP, ``ping`` op
        over TCP)."""
        return await self._call("ping", {})

    async def trace(self, trace_id: object) -> dict:
        """The server's retained span tree for ``trace_id``
        (``GET /v1/trace/<id>`` over HTTP, ``trace`` op over TCP)."""
        return await self._call("trace", {"trace_id": str(trace_id)})

    async def traces_summary(self) -> dict:
        """The server's per-stage critical-path/self-time rollup
        (``GET /v1/traces/summary`` / ``traces_summary`` op)."""
        return await self._call("traces_summary", {})

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------
    async def _call(self, op: str, payload: dict, trace=None) -> dict:
        # Connection establishment happens inside the transport
        # coroutines, so wait_for covers it: a black-holed host fails
        # the request after `timeout`, not the OS connect timeout.
        if self.transport == "http":
            coroutine = self._call_http(op, payload, trace=trace)
        else:
            coroutine = self._call_tcp(op, payload, trace=trace)
        if self.timeout is None:
            return await coroutine
        try:
            return await asyncio.wait_for(coroutine, self.timeout)
        except asyncio.TimeoutError:
            # The connection is desynchronised now (an HTTP response
            # for the abandoned request may still arrive and would be
            # read as the *next* call's answer); drop it so the next
            # call reconnects cleanly.  TCP correlates by id, but a
            # fresh connection is the safe state for both transports.
            await self.aclose()
            raise ClientError(
                "transport",
                f"{op} timed out after {self.timeout}s",
            )

    def _unwrap(self, envelope: Mapping[str, object]) -> dict:
        if envelope.get("ok"):
            result = envelope["result"]
            # The server's exported span subtree rides at envelope
            # level (it also covers error envelopes); fold it into the
            # result so callers that propagated a context can graft it.
            if "trace" in envelope and isinstance(result, dict):
                result = dict(result)
                result["trace"] = envelope["trace"]
            return result
        error = envelope.get("error") or {}
        raise ClientError(
            error.get("code", "internal"),
            f"{error.get('type', 'Error')}: "
            f"{error.get('message', 'unknown server error')}",
        )

    # -- HTTP ----------------------------------------------------------
    _HTTP_ROUTES = {
        "prepare": ("POST", "/v1/prepare"),
        "batch": ("POST", "/v1/batch"),
        "stats": ("GET", "/v1/stats"),
        "ping": ("GET", "/healthz"),
        "trace": ("GET", "/v1/trace/"),
        "traces_summary": ("GET", "/v1/traces/summary"),
    }

    async def _call_http(self, op: str, payload: dict, trace=None) -> dict:
        method, path = self._HTTP_ROUTES[op]
        if op == "trace":
            path += quote(str(payload.get("trace_id", "")), safe="")
        body = b"" if method == "GET" else json.dumps(payload).encode()
        trace_header = (
            f"X-Repro-Trace: {context_to_header(trace)}\r\n"
            if trace is not None else ""
        )
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{trace_header}"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1") + body
        async with self._http_lock:
            # A concurrent call's timeout (or a Connection: close
            # response) may have closed the connection while this call
            # waited for the lock or its first scheduling tick —
            # reconnect instead of crashing on a dead writer.  The
            # streams are bound locally so a sibling's aclose()
            # nulling the attributes mid-response surfaces as a
            # ConnectionError below, not an AttributeError.
            await self.connect()
            reader, writer = self._reader, self._writer
            try:
                writer.write(request)
                await writer.drain()
                envelope = await self._read_http_response(reader)
            except (
                ConnectionError, OSError, asyncio.IncompleteReadError,
            ) as error:
                await self.aclose()
                raise ClientError(
                    "transport", f"HTTP request failed: {error}"
                )
        return self._unwrap(envelope)

    async def _read_http_response(self, reader) -> dict:
        status_line = await reader.readline()
        if not status_line:
            # Server-side FIN does not flip writer.is_closing(), so
            # drop the dead connection or every subsequent call would
            # reuse it and fail the same way instead of reconnecting.
            await self.aclose()
            raise ClientError(
                "transport", "server closed the connection"
            )
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        try:
            return json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            # The stream is desynchronised; a fresh connection is the
            # only safe state for the next call.
            await self.aclose()
            raise ClientError(
                "transport", f"undecodable server response: {error}"
            )

    # -- TCP -----------------------------------------------------------
    async def _call_tcp(self, op: str, payload: dict, trace=None) -> dict:
        # The connection may have been closed (concurrent timeout)
        # between _call's connect and this coroutine's first step.
        await self.connect()
        self._next_id += 1
        request_id = self._next_id
        request = {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "op": op,
            **payload,
        }
        if trace is not None:
            request["trace"] = dict(trace)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode_line(request))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            raise ClientError(
                "transport", f"TCP send failed: {error}"
            )
        envelope = await future
        return self._unwrap(envelope)

    async def _pump_responses(self) -> None:
        """Read NDJSON responses and resolve them onto their futures."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    envelope = decode_line(line)
                except Exception:  # noqa: BLE001 - skip garbage frames
                    continue
                future = self._pending.pop(envelope.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(envelope)
        except (ConnectionError, OSError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ClientError(
                        "transport", "connection closed by server"
                    ))
            self._pending.clear()
            if self._reader_task is asyncio.current_task():
                # Server-side EOF (aclose detaches _reader_task
                # before cancelling, so this is not the aclose path):
                # drop the half-dead connection so `connected` turns
                # False and the next call reconnects instead of
                # writing into a socket nobody reads.
                self._reader_task = None
                if self._writer is not None:
                    self._writer.close()
                self._writer = None
                self._reader = None


class SyncReproClient:
    """Blocking facade over :class:`ReproClient`.

    Runs a private event loop on a daemon thread, so scripts, tests,
    and benchmarks can use the wire API without ``async``::

        with SyncReproClient("127.0.0.1", 8000) as client:
            outcome = client.prepare({"family": "ghz", "dims": [2, 3]})
            print(outcome["report"]["operations"])
    """

    def __init__(self, host: str, port: int, **kwargs):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-net-client",
            daemon=True,
        )
        self._thread.start()
        self._client = ReproClient(host, port, **kwargs)
        try:
            self._call(self._client.connect())
        except BaseException:
            # A failed connect leaves no client to close, but the
            # loop thread is already spinning — shut it down or it
            # leaks for the life of the process.
            self._shutdown_loop()
            raise

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result()

    def prepare(self, job, *, include_circuit: bool = False,
                trace=None) -> dict:
        return self._call(self._client.prepare(
            job, include_circuit=include_circuit, trace=trace
        ))

    def batch(self, jobs, *, defaults=None,
              include_circuit: bool = False, trace=None) -> dict:
        return self._call(self._client.batch(
            jobs, defaults=defaults, include_circuit=include_circuit,
            trace=trace,
        ))

    def stats(self) -> dict:
        return self._call(self._client.stats())

    def ping(self) -> dict:
        return self._call(self._client.ping())

    def trace(self, trace_id: object) -> dict:
        return self._call(self._client.trace(trace_id))

    def traces_summary(self) -> dict:
        return self._call(self._client.traces_summary())

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._call(self._client.aclose())
        self._shutdown_loop()

    def __enter__(self) -> "SyncReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
