"""Newline-delimited-JSON stream front end for high-throughput clients.

One persistent TCP connection carries any number of requests, one
JSON object per line (see :mod:`repro.net.protocol`)::

    {"v": 1, "id": 7, "op": "prepare", "job": {"family": "ghz", "dims": [3, 6, 2]}}

Every request spawns its own handler task, so responses come back
**as they complete — possibly out of order** — each echoing its
request ``id`` for correlation.  That is the point of this transport:
a client can keep dozens of requests in flight on one socket
(pipelining) and let the service's micro-batcher coalesce them,
without the per-request framing overhead of HTTP.

Shutdown mirrors :class:`~repro.net.http.HttpServer`: the listener
closes, in-flight requests finish and their responses are written,
idle connections are closed, and only then is the service drained.
"""

from __future__ import annotations

import asyncio
import time

from repro.net.base import CLOSING, StreamServer
from repro.net.protocol import (
    WireError,
    decode_line,
    encode_line,
    error_envelope,
    execute_request,
    result_envelope,
)
from repro.obs.tracing import parse_context

__all__ = ["TcpServer"]

#: Operations traced end-to-end (matching the HTTP front end).
_TRACED_OPS = frozenset({"prepare", "batch"})

#: Per-line byte bound; also the StreamReader limit, so an unbounded
#: line aborts the read instead of growing without limit.
_DEFAULT_MAX_LINE_BYTES = 1_000_000

#: Per-connection cap on requests being served at once; reading stops
#: (natural TCP backpressure) until a response frees a slot, so one
#: fast client cannot grow tasks and buffered responses without bound.
_DEFAULT_MAX_INFLIGHT = 256


class TcpServer(StreamServer):
    """Serve an ``AsyncPreparationService`` over an NDJSON stream.

    Args:
        service: A *running* service.  ``stop()`` drains and stops it
            too (the CLI starts/stops both); do not share one service
            between independently-stopped servers.
        host: Bind address.
        port: Bind port; 0 picks an ephemeral one (see :attr:`port`).
        max_line_bytes: Hard cap on one request line.
        max_inflight_requests: Per-connection cap on concurrently
            served requests; further lines are not read until a
            response completes.
        job_defaults: Option defaults layered under every wire job,
            exactly as in the HTTP server.
        drain_timeout: Seconds ``stop()`` waits for in-flight
            handlers before cancelling them (``None`` = forever).
        metrics: Registry wire metrics are published into; also
            served by the ``metrics`` operation (see
            :class:`~repro.net.base.StreamServer`).
        tracer: Tracer for end-to-end request tracing; retained
            traces are served by the ``trace`` operation.
    """

    transport = "tcp"

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_line_bytes: int = _DEFAULT_MAX_LINE_BYTES,
        max_inflight_requests: int = _DEFAULT_MAX_INFLIGHT,
        job_defaults=None,
        drain_timeout: float | None = 30.0,
        metrics=None,
        tracer=None,
        slow_trace_seconds: float | None = None,
    ):
        super().__init__(
            service, host, port,
            job_defaults=job_defaults,
            drain_timeout=drain_timeout,
            metrics=metrics,
            tracer=tracer,
            slow_trace_seconds=slow_trace_seconds,
        )
        self.max_line_bytes = max_line_bytes
        self.max_inflight_requests = max_inflight_requests

    def _listen_kwargs(self) -> dict:
        return {"limit": self.max_line_bytes}

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        slots = asyncio.Semaphore(self.max_inflight_requests)

        def _request_done(done):
            inflight.discard(done)
            slots.release()

        forced = False
        try:
            while True:
                line = await self._next_line(reader)
                if line is None:
                    break
                await slots.acquire()
                request_task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                inflight.add(request_task)
                request_task.add_done_callback(_request_done)
        except asyncio.CancelledError:
            # stop()'s drain deadline: the peer may never read again,
            # so graceful waits below could block forever.
            forced = True
            raise
        finally:
            # Answer everything already accepted on this connection
            # before closing it — pipelined requests are never
            # dropped.  On the deadline path the request tasks may
            # themselves be parked in drain() on this dead peer, so
            # they are taken down rather than awaited.
            try:
                if forced:
                    for request_task in inflight:
                        request_task.cancel()
                if inflight:
                    await asyncio.gather(
                        *inflight, return_exceptions=True
                    )
            except asyncio.CancelledError:
                # Deadline cancellation landing during this cleanup
                # wait (the handler left its loop when the closing
                # event fired, then parked here on stuck children —
                # gather has already cancelled them).
                forced = True
                raise
            finally:
                self._connections.discard(task)
                if forced:
                    writer.transport.abort()
                else:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                    except asyncio.CancelledError:
                        # Cancelled while flushing to a non-reading
                        # peer: discard the buffer, don't wait on it.
                        writer.transport.abort()
                        raise

    async def _next_line(self, reader) -> bytes | None:
        """Next request line, or ``None`` on EOF / server shutdown.

        The shutdown race resolves in favour of a line already
        received (see :meth:`_read_or_closing`).
        """
        while True:
            try:
                line = await self._read_or_closing(reader.readline())
            except (asyncio.LimitOverrunError, ValueError):
                # Line longer than the reader limit: the stream
                # position is unrecoverable, drop the connection.
                return None
            except (ConnectionError, OSError):
                # Abrupt client disconnect (TCP reset) mid-read.
                return None
            if line is CLOSING or not line:
                return None
            if line.strip() == b"":
                # Tolerate blank keep-alive lines between requests.
                continue
            return line

    async def _execute(self, op: str, request: dict) -> object:
        return await execute_request(
            self.service, op, request,
            defaults=self.job_defaults,
            registry=self.metrics,
            tracer=self.tracer,
        )

    async def _serve_line(self, line, writer, write_lock) -> None:
        request_id = None
        started = self._request_begin()
        op_label = "invalid"
        trace = None
        context = None
        failed_code = None
        try:
            parse_started = time.perf_counter()
            request = decode_line(line)
            parse_elapsed = time.perf_counter() - parse_started
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise WireError(
                    "bad_request", "request needs a string 'op' field"
                )
            op_label = op
            if self.tracer is not None and op in _TRACED_OPS:
                context = parse_context(request.get("trace"))
                with self.tracer.request(
                    request_id, transport="tcp", context=context
                ) as trace:
                    if trace is not None:
                        trace.add_span(
                            "parse", start=0.0, duration=parse_elapsed
                        )
                    result = await self._execute(op, request)
            else:
                result = await self._execute(op, request)
            if (
                trace is not None
                and isinstance(result, dict)
                and result.get("ok") is False
            ):
                failure = result.get("error") or {}
                trace.set_error(
                    failure.get("code", "internal"),
                    failure.get("message", ""),
                )
            envelope = result_envelope(result, request_id=request_id)
        except WireError as error:
            if trace is not None:
                trace.set_error(error.code, str(error))
            envelope = error_envelope(error, request_id=request_id)
            failed_code = error.code
        except Exception as error:  # noqa: BLE001 - wire boundary
            wire = WireError.from_exception(error)
            if trace is not None:
                trace.set_error(wire.code, str(wire))
            envelope = error_envelope(wire, request_id=request_id)
            failed_code = wire.code
        if context is not None and trace is not None:
            # The caller propagated a trace context: ship this
            # process's span subtree back for grafting.
            envelope["trace"] = trace.export()
        serialize_span = (
            trace.begin_span("serialize", parent=trace.find("request"))
            if trace is not None else None
        )
        try:
            async with write_lock:
                writer.write(encode_line(envelope))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
        finally:
            if serialize_span is not None:
                serialize_span.finish()
            self._request_end(
                op_label, started,
                error_code=failed_code,
                request_id=(
                    request_id if request_id is not None
                    else (
                        trace.request_id if trace is not None else None
                    )
                ),
                trace=trace,
            )
