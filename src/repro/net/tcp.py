"""Newline-delimited-JSON stream front end for high-throughput clients.

One persistent TCP connection carries any number of requests, one
JSON object per line (see :mod:`repro.net.protocol`)::

    {"v": 1, "id": 7, "op": "prepare", "job": {"family": "ghz", "dims": [3, 6, 2]}}

Every request spawns its own handler task, so responses come back
**as they complete — possibly out of order** — each echoing its
request ``id`` for correlation.  That is the point of this transport:
a client can keep dozens of requests in flight on one socket
(pipelining) and let the service's micro-batcher coalesce them,
without the per-request framing overhead of HTTP.

Shutdown mirrors :class:`~repro.net.http.HttpServer`: the listener
closes, in-flight requests finish and their responses are written,
idle connections are closed, and only then is the service drained.
"""

from __future__ import annotations

import asyncio

from repro.net.protocol import (
    WireError,
    decode_line,
    encode_line,
    error_envelope,
    execute_request,
    result_envelope,
)

__all__ = ["TcpServer"]

#: Per-line byte bound; also the StreamReader limit, so an unbounded
#: line aborts the read instead of growing without limit.
_DEFAULT_MAX_LINE_BYTES = 1_000_000


class TcpServer:
    """Serve an ``AsyncPreparationService`` over an NDJSON stream.

    Args:
        service: A running service (lifecycle owned by the caller).
        host: Bind address.
        port: Bind port; 0 picks an ephemeral one (see :attr:`port`).
        max_line_bytes: Hard cap on one request line.
        job_defaults: Option defaults layered under every wire job,
            exactly as in the HTTP server.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_line_bytes: int = _DEFAULT_MAX_LINE_BYTES,
        job_defaults=None,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.max_line_bytes = max_line_bytes
        self.job_defaults = job_defaults
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing: asyncio.Event | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    async def start(self) -> "TcpServer":
        if self._server is not None:
            return self
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=self.max_line_bytes,
        )
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, finish and answer every
        in-flight request, close idle connections, drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._closing is not None:
            self._closing.set()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        await self.service.stop()

    async def __aenter__(self) -> "TcpServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        try:
            while True:
                line = await self._next_line(reader)
                if line is None:
                    break
                request_task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                inflight.add(request_task)
                request_task.add_done_callback(inflight.discard)
        finally:
            # Answer everything already accepted on this connection
            # before closing it — pipelined requests are never dropped.
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _next_line(self, reader) -> bytes | None:
        """Next request line, or ``None`` on EOF / server shutdown.

        The shutdown race resolves in favour of a line already
        received, mirroring the HTTP server.
        """
        while True:
            if self._closing is None or self._closing.is_set():
                return None
            read = asyncio.ensure_future(reader.readline())
            closing = asyncio.ensure_future(self._closing.wait())
            try:
                await asyncio.wait(
                    {read, closing},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                closing.cancel()
            if not read.done():
                read.cancel()
                try:
                    await read
                except asyncio.CancelledError:
                    pass
                return None
            try:
                line = await read
            except (asyncio.LimitOverrunError, ValueError):
                # Line longer than the reader limit: the stream
                # position is unrecoverable, drop the connection.
                return None
            if not line:
                return None
            if line.strip() == b"":
                # Tolerate blank keep-alive lines between requests.
                continue
            return line

    async def _serve_line(self, line, writer, write_lock) -> None:
        request_id = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise WireError(
                    "bad_request", "request needs a string 'op' field"
                )
            result = await execute_request(
                self.service, op, request, defaults=self.job_defaults
            )
            envelope = result_envelope(result, request_id=request_id)
        except WireError as error:
            envelope = error_envelope(error, request_id=request_id)
        except Exception as error:  # noqa: BLE001 - wire boundary
            envelope = error_envelope(
                WireError.from_exception(error), request_id=request_id
            )
        self.requests_served += 1
        async with write_lock:
            writer.write(encode_line(envelope))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    def __repr__(self) -> str:
        state = "listening" if self.running else "stopped"
        return f"TcpServer({state}, {self.host}:{self.port})"
