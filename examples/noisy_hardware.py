#!/usr/bin/env python3
"""Choosing the approximation threshold for noisy hardware.

The paper motivates state-preparation synthesis by hardware errors:
every gate fails with some probability, so shorter circuits can beat
exact ones end-to-end.  This example sweeps the approximation
threshold for a random mixed-dimensional state under a simple gate
error model and reports the threshold that maximises the expected
fidelity of the *hardware-prepared* state.

Run:  python examples/noisy_hardware.py
"""

from repro import random_state
from repro.analysis.noise import NoiseModel, sweep_thresholds
from repro.analysis.rendering import render_table

DIMS = (4, 3, 3, 2)
THRESHOLDS = [1.0, 0.99, 0.98, 0.95, 0.90, 0.85, 0.80]


def main() -> None:
    target = random_state(DIMS, rng=2024)
    noise = NoiseModel(two_qudit_error=0.003)
    print(
        f"target: random state over dims {DIMS}; "
        f"noise: {noise.two_qudit_error:.3%} error per two-qudit gate\n"
    )

    sweep = sweep_thresholds(target, noise, THRESHOLDS)
    best = max(sweep, key=lambda p: p.total_fidelity)
    rows = [
        [
            f"{p.threshold:.2f}",
            p.operations,
            f"{p.approximation_fidelity:.4f}",
            f"{p.circuit_success:.4f}",
            f"{p.total_fidelity:.4f}"
            + ("  <-- best" if p is best else ""),
        ]
        for p in sweep
    ]
    print(
        render_table(
            ["threshold", "gates", "F_repr", "P_success", "F_total"],
            rows,
            title="Expected end-to-end fidelity per threshold",
        )
    )

    exact = sweep[0]
    print(
        f"\nOn this hardware, approximating at threshold "
        f"{best.threshold:.2f} yields expected fidelity "
        f"{best.total_fidelity:.4f} versus {exact.total_fidelity:.4f} "
        "for exact synthesis -"
    )
    print(
        "the representation loss is more than repaid by executing "
        f"{exact.operations - best.operations} fewer gates."
    )
    assert best.total_fidelity >= exact.total_fidelity


if __name__ == "__main__":
    main()
