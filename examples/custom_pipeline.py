#!/usr/bin/env python3
"""Inserting a user-defined pass into the preparation pipeline.

The pipeline of :mod:`repro.pipeline` is an open sequence of passes:
anything with a ``name`` and a ``run(context) -> context`` method can
join the flow.  This example defines two custom passes —

* ``RotationFusionPass``: a gate-fusion stage that merges adjacent
  same-axis rotations and drops the identities the paper-faithful
  synthesis emits (semantics-preserving, so verification still sees
  fidelity 1), and
* ``StageLoggingPass``: a read-only stage that snapshots diagram and
  circuit statistics into ``context.extras`` —

then runs the extended pipeline both directly and through a
:class:`repro.PreparationEngine`, where the custom pipeline's
signature keeps its cache entries separate from default-pipeline runs.

Run:  python examples/custom_pipeline.py
"""

from repro import (
    Pass,
    Pipeline,
    PipelineConfig,
    PreparationEngine,
    PreparationJob,
    default_pipeline,
)
from repro.transpile.passes import peephole_optimize

DIMS = (3, 6, 2)


class RotationFusionPass(Pass):
    """Fuse adjacent rotations and drop identity gates."""

    name = "fuse"

    def run(self, context):
        before = context.circuit.num_operations
        context.circuit = peephole_optimize(context.circuit)
        context.extras["fused_away"] = (
            before - context.circuit.num_operations
        )
        return context


class StageLoggingPass(Pass):
    """Snapshot diagram/circuit statistics into the context extras."""

    name = "log-stats"

    def run(self, context):
        context.extras["logged"] = {
            "dag_nodes": context.diagram.num_nodes(),
            "operations": context.circuit.num_operations,
        }
        return context


def build_pipeline() -> Pipeline:
    """Default flow + fusion right after synthesis, logging after it."""
    return (
        default_pipeline()
        .with_pass(RotationFusionPass(), after="synthesize")
        .with_pass(StageLoggingPass(), before="verify")
    )


def main() -> None:
    pipeline = build_pipeline()
    print("pipeline:", " -> ".join(p.name for p in pipeline.passes))

    # Library-level: run the pipeline directly on one state.
    from repro import ghz_state

    context = pipeline.run(ghz_state(DIMS), config=PipelineConfig())
    print(
        f"direct run: fused away {context.extras['fused_away']} "
        f"identity/adjacent rotations, "
        f"{context.extras['logged']['operations']} remain, "
        f"fidelity {context.fidelity:.10f}"
    )
    assert context.fidelity > 1.0 - 1e-9

    # Engine-level: the same pipeline behind batching and caching.
    engine = PreparationEngine(pipeline=pipeline)
    jobs = [
        PreparationJob(dims=DIMS, family="ghz"),
        PreparationJob(dims=DIMS, family="w"),
        PreparationJob(dims=DIMS, family="ghz"),  # dedup -> cache hit
    ]
    batch = engine.run_batch(jobs).raise_on_failure()
    for outcome in batch.outcomes:
        stages = ", ".join(
            f"{stage}={seconds * 1e3:.2f}ms"
            for stage, seconds in outcome.stage_timings
        ) or "cache hit"
        print(f"{outcome.job.label}: {outcome.report.operations} ops "
              f"({stages})")
    assert batch.outcomes[2].cache_hit
    fused = batch.outcomes[0].report.operations
    plain = PreparationEngine().submit(jobs[0]).report.operations
    print(f"fusion pass saved {plain - fused} of {plain} operations")
    assert fused < plain
    print("OK: custom passes ran through the engine with per-stage "
          "timings.")


if __name__ == "__main__":
    main()
