#!/usr/bin/env python3
"""GHZ preparation, hand-built versus synthesised (Figure 1).

The paper's Figure 1 constructs a two-qutrit GHZ state with a qutrit
Hadamard followed by two controlled increments.  This example builds
that circuit by hand with the gate library, synthesises another
circuit automatically from the decision diagram, and shows both
produce the same state — on the figure's two-qutrit system and on a
larger mixed-dimensional register.

Run:  python examples/ghz_mixed_dimensional.py
"""

import numpy as np

from repro import Circuit, ghz_state, prepare_state, simulate
from repro.circuit.gates import FourierGate, ShiftGate
from repro.states.fidelity import fidelity


def hand_built_ghz_circuit() -> Circuit:
    """The literal circuit of Figure 1 (two qutrits)."""
    circuit = Circuit((3, 3))
    circuit.append(FourierGate(0))                      # qutrit Hadamard
    circuit.append(ShiftGate(1, 1, controls=[(0, 1)]))  # +1 if q0 = 1
    circuit.append(ShiftGate(1, 2, controls=[(0, 2)]))  # +2 if q0 = 2
    return circuit


def main() -> None:
    target = ghz_state((3, 3))

    # --- the paper's hand-built circuit -----------------------------
    manual = hand_built_ghz_circuit()
    manual_state = simulate(manual)
    manual_fidelity = fidelity(target, manual_state)
    print(f"hand-built circuit (Figure 1): {manual.num_operations} "
          f"gates, fidelity {manual_fidelity:.10f}")

    # --- the automatic synthesis ------------------------------------
    synthesised = prepare_state(target)
    print(f"synthesised circuit: {synthesised.report.operations} "
          f"rotations, fidelity {synthesised.report.fidelity:.10f}")

    assert np.isclose(manual_fidelity, 1.0, atol=1e-9)
    assert np.isclose(synthesised.report.fidelity, 1.0, atol=1e-9)

    # --- scales to mixed dimensions automatically -------------------
    # Hand-building the GHZ circuit for (5, 3, 7, 2) would require
    # case analysis; the synthesis is one call.
    mixed = prepare_state(ghz_state((5, 3, 7, 2)))
    print(
        f"\nGHZ over dims (5, 3, 7, 2): "
        f"{mixed.report.operations} rotations, "
        f"median controls {mixed.report.median_controls}, "
        f"fidelity {mixed.report.fidelity:.10f}"
    )
    assert np.isclose(mixed.report.fidelity, 1.0, atol=1e-9)
    print("OK: automatic synthesis matches the hand-built construction.")


if __name__ == "__main__":
    main()
