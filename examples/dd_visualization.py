#!/usr/bin/env python3
"""Decision-diagram inspection and DOT export (Figures 3 and 4).

Builds the qutrit-qubit state of the paper's Example 4 /
Figure 3, walks its decision diagram, demonstrates the path-product
amplitude rule, and writes Graphviz DOT files for both the exact and
an approximated diagram.

Run:  python examples/dd_visualization.py [output-directory]
"""

import math
import pathlib
import sys

import numpy as np

from repro import StateVector, approximate, build_dd
from repro.dd.dot import to_dot


def figure3_state() -> StateVector:
    """(|00> - |11> + |21>)/sqrt(3) on a qutrit-qubit register."""
    amplitudes = np.zeros(6, dtype=complex)
    amplitudes[0] = 1.0   # |00>
    amplitudes[3] = -1.0  # |11>
    amplitudes[5] = 1.0   # |21>
    return StateVector(amplitudes / math.sqrt(3.0), (3, 2))


def main() -> None:
    output_dir = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "."
    )
    state = figure3_state()
    dd = build_dd(state)

    print("state:", state)
    print(f"DAG nodes: {dd.num_nodes()}, "
          f"distinct complex values: {dd.distinct_complex_values()}")

    # The amplitude of |11> is the product of the weights on its path
    # (Example 4 of the paper).
    root = dd.root.node
    path_product = (
        dd.root.weight
        * root.successor(1).weight
        * root.successor(1).node.successor(1).weight
    )
    print(f"amplitude(|11>) from path product: {path_product:.6f}")
    assert np.isclose(path_product, -1 / math.sqrt(3))

    # Root edges 1 and 2 share one child node (the reduction rule).
    shared = root.successor(1).node is root.successor(2).node
    print(f"root edges 1 and 2 share a child node: {shared}")

    exact_path = output_dir / "figure3_exact.dot"
    exact_path.write_text(to_dot(dd, show_zero_edges=True))
    print(f"wrote {exact_path}")

    # Approximate at 2/3 fidelity: the smallest subtree is pruned.
    result = approximate(dd, 2.0 / 3.0)
    approx_path = output_dir / "figure3_approx.dot"
    approx_path.write_text(to_dot(result.diagram))
    print(
        f"wrote {approx_path} "
        f"(fidelity {result.fidelity:.4f}, "
        f"removed mass {result.removed_mass:.4f})"
    )
    print("render with: dot -Tpdf figure3_exact.dot -o figure3.pdf")


if __name__ == "__main__":
    main()
