#!/usr/bin/env python3
"""Lowering synthesised circuits to two-qudit gates.

The paper's operation counts are multi-controlled rotations, justified
by the existence of linear-overhead transpilations to two-qudit gates
[references 35, 36 of the paper].  This example makes that step
concrete: it synthesises a random mixed-dimensional state, cleans the
circuit with the peephole passes, lowers every multi-controlled
rotation through the ancilla-counter construction, and verifies the
final two-qudit circuit still prepares the target.

Run:  python examples/transpile_to_two_qudit.py
"""

import numpy as np

from repro import prepare_state, random_state, simulate
from repro.states.fidelity import fidelity
from repro.states.statevector import StateVector
from repro.transpile.counter import decompose_multicontrolled
from repro.transpile.cost_model import two_qudit_cost_of_circuit
from repro.transpile.passes import peephole_optimize

DIMS = (2, 3, 2)


def main() -> None:
    target = random_state(DIMS, rng=99, distribution="gaussian")
    result = prepare_state(target)
    circuit = result.circuit
    print(
        f"synthesised: {circuit.num_operations} multi-controlled "
        f"rotations (max {max(g.num_controls for g in circuit)} "
        "controls)"
    )

    cleaned = peephole_optimize(circuit)
    print(f"after peephole cleanup: {cleaned.num_operations} rotations")

    predicted = two_qudit_cost_of_circuit(cleaned)
    lowered = decompose_multicontrolled(cleaned)
    print(
        f"lowered to two-qudit gates: {lowered.num_operations} gates "
        f"(cost model predicted {predicted}) on dims {lowered.dims} "
        "(last qudit is the ancilla counter)"
    )
    assert lowered.num_operations == predicted
    assert all(len(gate.qudits) <= 2 for gate in lowered)

    # Verify on the extended register: ancilla starts and ends in |0>.
    produced = simulate(lowered)
    ancilla_dim = lowered.dims[-1]
    on_subspace = produced.amplitudes[::ancilla_dim]
    restricted = StateVector(on_subspace, DIMS)
    achieved = fidelity(target, restricted)
    leak = 1.0 - float(np.sum(np.abs(on_subspace) ** 2))
    print(f"fidelity after lowering: {achieved:.10f} "
          f"(amplitude outside ancilla-0 subspace: {leak:.2e})")
    assert achieved > 1.0 - 1e-9
    print("OK: two-qudit circuit prepares the target exactly.")


if __name__ == "__main__":
    main()
