#!/usr/bin/env python3
"""Prepare a mixed-dimensional GHZ state over the wire.

Starts a real :class:`repro.net.HttpServer` on an ephemeral port,
then talks to it exactly as a remote caller would — through
:class:`repro.net.ReproClient` over a TCP socket — to prepare the
paper's flagship mixed-dimensional example, the GHZ state on a
(3, 6, 2) qudit register.  Demonstrates that:

* a job travels as plain JSON (the same fields as a batch-spec job)
  and comes back with the full synthesis report, the per-stage
  pipeline timings, and (on request) the QDASM circuit text,
* repeated requests are served from the content-addressed cache,
* the outcome over the wire equals the in-process
  ``prepare_state`` result (modulo wall times).

Run:  python examples/http_client.py
"""

import asyncio

from repro.circuit import qasm
from repro.net import HttpServer, ReproClient
from repro.service import AsyncPreparationService

GHZ_JOB = {"family": "ghz", "dims": [3, 6, 2], "label": "ghz-3x6x2"}


async def main() -> None:
    service = AsyncPreparationService(num_shards=4)
    await service.start()
    async with HttpServer(service) as server:
        print(f"server listening on 127.0.0.1:{server.port}\n")
        async with ReproClient("127.0.0.1", server.port) as client:
            health = await client.ping()
            assert health["status"] == "ok"

            outcome = await client.prepare(
                GHZ_JOB, include_circuit=True
            )
            assert outcome["ok"], outcome
            report = outcome["report"]
            print(f"prepared {outcome['label']} over the wire:")
            print(f"  dims             {report['dims']}")
            print(f"  operations       {report['operations']}")
            print(f"  median controls  {report['median_controls']}")
            print(f"  visited nodes    {report['visited_nodes']}")
            print(f"  fidelity         {report['fidelity']}")
            stage_order = ", ".join(outcome["stage_timings"])
            print(f"  pipeline stages  {stage_order}")

            circuit = qasm.loads(outcome["circuit"])
            print(f"  circuit          {len(circuit)} gates "
                  f"(QDASM round-tripped client-side)")

            again = await client.prepare(GHZ_JOB)
            assert again["cache_hit"], "second request must hit the cache"
            assert again["report"] == report, "cached report must match"
            print("\nsecond request: served from the cache")

            stats = await client.stats()
            engine = stats["engine"]
            print(
                f"server stats: {stats['requests']} requests, "
                f"{engine['cache_hits']} cache hits, "
                f"{engine['jobs_executed']} synthesis runs"
            )
            assert engine["jobs_executed"] == 1


if __name__ == "__main__":
    asyncio.run(main())
    print("\nhttp_client example OK")
