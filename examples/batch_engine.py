#!/usr/bin/env python3
"""Batch preparation with the engine: caching, dedup, parallelism.

Submits a mixed-dimensional batch — GHZ, W, and random states — to
the :class:`repro.engine.PreparationEngine`, demonstrates that
repeated targets are served from the content-addressed circuit cache,
and round-trips the same batch through the JSON spec format consumed
by ``python -m repro batch``.

Run:  python examples/batch_engine.py [output-dir]
"""

import json
import pathlib
import sys
import tempfile

from repro.engine import (
    PreparationEngine,
    PreparationJob,
    SynthesisOptions,
    load_batch_spec,
)


def build_jobs() -> list[PreparationJob]:
    return [
        PreparationJob(dims=(3, 6, 2), family="ghz"),
        PreparationJob(dims=(2, 2, 2), family="w"),
        PreparationJob(dims=(3, 6, 2), family="ghz"),  # duplicate
        PreparationJob(dims=(3, 3), family="random", params={"rng": 7}),
        PreparationJob(
            dims=(2, 3),
            family="random",
            params={"rng": 11},
            options=SynthesisOptions(min_fidelity=0.9),
            label="approx-random",
        ),
    ]


def main() -> None:
    output_dir = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()
    )
    output_dir.mkdir(parents=True, exist_ok=True)

    engine = PreparationEngine()
    jobs = build_jobs()

    # Cold run: every distinct target is synthesised once; the
    # duplicate GHZ job is served from the cache within the batch.
    cold = engine.run_batch(jobs)
    print("cold run:")
    for outcome in cold.outcomes:
        source = "cache" if outcome.cache_hit else "synthesised"
        print(
            f"  {outcome.job.label:<16} {outcome.report.operations:>3} "
            f"operations  fidelity={outcome.report.fidelity:.6f}  "
            f"[{source}]"
        )
    assert cold.num_cache_hits == 1, "duplicate GHZ must hit the cache"

    # Warm run: the whole batch is cache hits.
    warm = engine.run_batch(jobs)
    assert warm.num_cache_hits == len(jobs)
    print(f"\nwarm run: {warm.num_cache_hits}/{len(jobs)} cache hits")
    print("engine stats:", engine.stats().summary())

    # The same batch as a JSON spec, as `python -m repro batch` takes.
    spec_path = output_dir / "batch_spec.json"
    spec_path.write_text(json.dumps(
        {"jobs": [job.describe() for job in jobs]}, indent=2
    ))
    reloaded = load_batch_spec(spec_path)
    assert len(reloaded) == len(jobs)
    print(f"\nwrote runnable spec to {spec_path}")
    print(f"try: python -m repro batch {spec_path} --executor parallel")


if __name__ == "__main__":
    main()
