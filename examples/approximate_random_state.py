#!/usr/bin/env python3
"""Approximated synthesis: trading fidelity for circuit size.

Reproduces the behaviour of Table 1's "Approximated 98%" columns on a
random state and then sweeps the threshold further down to expose the
full trade-off curve promised in the paper's abstract ("a finely
controlled trade-off between accuracy, memory complexity, and number
of operations").

Run:  python examples/approximate_random_state.py
"""

from repro import prepare_state, random_state
from repro.analysis.rendering import render_table

DIMS = (4, 3, 3, 2)
THRESHOLDS = [1.0, 0.99, 0.98, 0.95, 0.90, 0.80]


def main() -> None:
    target = random_state(DIMS, rng=2024, distribution="uniform")
    print(f"random target over dims {DIMS} "
          f"({target.size} amplitudes)\n")

    rows = []
    baseline_ops = None
    for threshold in THRESHOLDS:
        result = prepare_state(target, min_fidelity=threshold)
        report = result.report
        if baseline_ops is None:
            baseline_ops = report.operations
        saved = 100.0 * (1 - report.operations / baseline_ops)
        rows.append(
            [
                f"{threshold:.2f}",
                report.visited_nodes,
                report.operations,
                f"{saved:.1f}%",
                report.median_controls,
                f"{report.fidelity:.4f}",
            ]
        )
        assert report.fidelity >= threshold - 1e-9
    print(
        render_table(
            ["min fidelity", "DD nodes", "operations", "ops saved",
             "#controls", "achieved fidelity"],
            rows,
            title="Fidelity / size trade-off on one random state",
        )
    )

    print(
        "\nEvery row satisfies its fidelity floor; node and operation"
        "\ncounts decrease monotonically as the floor is lowered."
    )


if __name__ == "__main__":
    main()
