#!/usr/bin/env python3
"""Concurrent serving with the async sharded preparation service.

Spins up an :class:`repro.service.AsyncPreparationService` — a
micro-batching asyncio front end over the
:class:`repro.engine.PreparationEngine` with a content-key-sharded
circuit cache — and serves a mixed-dimensional workload to many
concurrent clients at once.  Demonstrates that:

* concurrent single-job submissions coalesce into micro-batches,
* every client receives outcomes identical (up to wall times and
  cache flags) to a plain serial ``run_batch`` of the same jobs,
* the sharded cache's aggregated statistics obey
  ``hits + misses == lookups``.

Run:  python examples/async_service.py [output-dir]
"""

import asyncio
import sys

from repro.engine import (
    PreparationEngine,
    PreparationJob,
    comparable_outcome,
)
from repro.service import AsyncPreparationService

NUM_CLIENTS = 12

WORKLOAD = [
    PreparationJob(dims=(3, 6, 2), family="ghz"),
    PreparationJob(dims=(2, 2, 2), family="w"),
    PreparationJob(dims=(3, 3), family="random", params={"rng": 7}),
    PreparationJob(dims=(3, 6, 2), family="ghz"),  # duplicate
]


async def client(service, client_id: int):
    """One client: submit the workload and await all outcomes."""
    result = await service.run_batch(WORKLOAD)
    ok = sum(1 for outcome in result.outcomes if outcome.ok)
    print(
        f"  client {client_id:>2}: {ok}/{len(result)} ok "
        f"in {result.wall_time:.3f}s"
    )
    return result


async def serve() -> list:
    service = AsyncPreparationService(
        num_shards=4, max_batch_size=16, max_batch_delay=0.01
    )
    async with service:
        results = await asyncio.gather(*(
            client(service, client_id)
            for client_id in range(NUM_CLIENTS)
        ))
    stats = service.stats()
    print("\nservice stats:", stats.summary())

    # Concurrency actually coalesced: far fewer engine batches than
    # requests, and the engine synthesised each distinct state once.
    assert stats.requests == NUM_CLIENTS * len(WORKLOAD)
    assert stats.batches_dispatched < stats.requests
    assert stats.engine.jobs_executed == 3, "3 distinct targets"

    cache_stats = service.engine.cache.stats
    assert (
        cache_stats.hits + cache_stats.misses == cache_stats.lookups
    ), "cache stats invariant"
    return results


def main() -> None:
    # The optional output-dir argument (passed by the test harness)
    # is unused: the service is in-memory end to end.
    _ = sys.argv[1:]

    print(f"serving {NUM_CLIENTS} concurrent clients:")
    results = asyncio.run(serve())

    # Every client got the same answer a plain serial engine gives.
    reference = PreparationEngine().run_batch(WORKLOAD)
    expected = [comparable_outcome(o) for o in reference.outcomes]
    for result in results:
        assert [
            comparable_outcome(o) for o in result.outcomes
        ] == expected
    print(
        f"all {NUM_CLIENTS} clients match the serial reference "
        f"engine ({len(WORKLOAD)} jobs each)"
    )


if __name__ == "__main__":
    main()
