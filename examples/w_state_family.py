#!/usr/bin/env python3
"""The W-state family across mixed-dimensional registers.

Reproduces the structured-benchmark portion of Table 1: for each of
the paper's three register configurations, synthesises the W state
(all-level excitations) and the embedded W state (level-1 only) and
prints the metrics in the paper's format.  Both families are then
measurement-sampled from the decision diagram to show the expected
single-excitation structure.

Run:  python examples/w_state_family.py
"""

from repro import embedded_w_state, prepare_state, w_state
from repro.analysis.rendering import render_table
from repro.dd.builder import build_dd
from repro.dd.sampling import sample

CONFIGS = [
    ((3, 6, 2), "[1x3,1x6,1x2]"),
    ((9, 5, 6, 3), "[1x9,1x5,1x6,1x3]"),
    ((4, 7, 4, 4, 3, 5), "[3x4,1x7,1x3,1x5]"),
]


def main() -> None:
    rows = []
    for dims, label in CONFIGS:
        for name, family in [
            ("W-State", w_state),
            ("Emb. W-State", embedded_w_state),
        ]:
            report = prepare_state(
                family(dims), tensor_elision=False
            ).report
            rows.append(
                [
                    name,
                    label,
                    report.tree_nodes,
                    report.distinct_complex,
                    report.operations,
                    report.median_controls,
                    f"{report.fidelity:.2f}",
                ]
            )
    print(
        render_table(
            ["Name", "Qudits", "Nodes", "DistinctC", "Operations",
             "#Controls", "Fidelity"],
            rows,
            title="W-state family, exact synthesis (cf. Table 1)",
        )
    )

    # Sampling check: every outcome of a W state has exactly one
    # non-zero digit.
    dd = build_dd(w_state((3, 6, 2)))
    histogram = sample(dd, 2000, rng=7)
    assert all(
        sum(1 for digit in outcome if digit != 0) == 1
        for outcome in histogram
    )
    print(
        f"\nsampled {sum(histogram.values())} shots from the (3,6,2) "
        f"W state: {len(histogram)} distinct single-excitation "
        "outcomes, as expected."
    )


if __name__ == "__main__":
    main()
