#!/usr/bin/env python3
"""Quickstart: prepare a mixed-dimensional state in five lines.

Synthesises a preparation circuit for the GHZ state on a
qutrit / six-level / qubit register — the first benchmark row of the
paper — and verifies the result by dense simulation.

Run:  python examples/quickstart.py
"""

from repro import ghz_state, prepare_state
from repro.circuit.text import draw


def main() -> None:
    # 1. Pick a target state over mixed-dimensional qudits.
    target = ghz_state((3, 6, 2))
    print("target state:", target)

    # 2. Synthesise the preparation circuit (exact mode).
    result = prepare_state(target)

    # 3. Inspect the result.
    report = result.report
    print(f"\ndecision-diagram tree nodes : {report.tree_nodes}")
    print(f"distinct complex values     : {report.distinct_complex}")
    print(f"multi-controlled operations : {report.operations}")
    print(f"median controls per op      : {report.median_controls}")
    print(f"synthesis time              : {report.synthesis_time:.4f} s")
    print(f"verified fidelity           : {report.fidelity:.10f}")

    print("\ncircuit (first gates):")
    print(draw(result.circuit, max_columns=10))

    assert report.fidelity > 1.0 - 1e-9, "exact synthesis must be exact"
    print("\nOK: circuit prepares the GHZ state exactly.")


if __name__ == "__main__":
    main()
