"""Setuptools shim.

Present only so ``python setup.py develop`` works in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
need it); all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
